"""Suite orchestration and the ``repro bench`` entry point.

A bench result is a JSON document::

    {"meta": {"rev": ..., "python": ..., "numpy": ..., "unix_time": ...},
     "metrics": {"micro.identifier.us_per_interval": ..., ...}}

``run_suite`` produces one, ``write_result`` saves it as
``BENCH_<rev>.json`` (the committed trajectory points), and
``main`` wires it all behind ``repro bench`` — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Dict, Optional

from repro.bench.gate import DEFAULT_TOLERANCE, GateResult, compare

__all__ = ["run_suite", "write_result", "load_result", "default_baseline_path",
           "format_metrics", "format_gate", "main"]

#: Repository-relative location of the committed comparison baseline.
BASELINE_RELPATH = os.path.join("benchmarks", "perf", "baseline.json")


def git_rev(short: bool = True) -> str:
    """Current git revision, or ``local`` outside a repository."""
    try:
        args = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
        out = subprocess.run(
            args, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return out or "local"
    except Exception:
        return "local"


def run_suite(
    *,
    micro: bool = True,
    macro: bool = True,
    repeat: int = 3,
    full_fig11: bool = False,
) -> Dict:
    """Run the selected benchmark layers and assemble the result document."""
    import numpy

    metrics: Dict[str, float] = {}
    if micro:
        from repro.bench.micro import run_micro

        metrics.update(run_micro(repeat=repeat))
    if macro:
        from repro.bench.macro import run_macro

        metrics.update(run_macro(full_fig11=full_fig11))
    return {
        "meta": {
            "rev": git_rev(),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "cpus_available": _cpus_available(),
            "unix_time": int(time.time()),
        },
        "metrics": metrics,
    }


def _cpus_available() -> Optional[int]:
    """CPUs this process may actually use (cgroup/affinity-aware).

    ``os.cpu_count()`` reports the machine; a containerized CI runner is
    often pinned to fewer cores, which is what the pool-speedup metrics
    (``cluster_scale.workersN_*``) physically depend on.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count()


def write_result(result: Dict, path: Optional[str] = None) -> str:
    """Write a bench result; default path is ``BENCH_<rev>.json``."""
    if path is None:
        path = f"BENCH_{result['meta']['rev']}.json"
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_result(path: str) -> Dict:
    with open(path) as fh:
        doc = json.load(fh)
    if "metrics" not in doc:
        raise ValueError(f"{path} is not a bench result (no 'metrics' key)")
    return doc


def default_baseline_path() -> Optional[str]:
    """The committed baseline, resolved from the repo root if available."""
    candidates = [BASELINE_RELPATH]
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        if top:
            candidates.insert(0, os.path.join(top, BASELINE_RELPATH))
    except Exception:
        pass
    for path in candidates:
        if os.path.exists(path):
            return path
    return None


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_metrics(result: Dict) -> str:
    """Human-readable metric table for one bench result."""
    meta = result.get("meta", {})
    lines = [
        f"rev {meta.get('rev', '?')} · python {meta.get('python', '?')}"
        f" · numpy {meta.get('numpy', '?')}",
        "",
        f"{'metric':<44} {'value':>14}",
        "-" * 59,
    ]
    for name in sorted(result["metrics"]):
        lines.append(f"{name:<44} {_fmt(result['metrics'][name]):>14}")
    return "\n".join(lines)


def format_gate(gate: GateResult, baseline_rev: str) -> str:
    """Human-readable comparison table with gate verdicts."""
    lines = [
        f"comparison vs baseline rev {baseline_rev} "
        "(improvement > 1.00x means better)",
        "",
        f"{'metric':<44} {'baseline':>12} {'current':>12} {'change':>9}  verdict",
        "-" * 90,
    ]
    for c in gate.comparisons:
        if c.regressed:
            verdict = "REGRESSED"
        elif not c.gated:
            verdict = "(info)"
        else:
            verdict = "ok"
        lines.append(
            f"{c.metric:<44} {_fmt(c.baseline):>12} {_fmt(c.current):>12} "
            f"{c.improvement:>8.2f}x  {verdict}"
        )
    for name in gate.missing_in_baseline:
        lines.append(f"{name:<44} {'-':>12} {'new':>12} {'':>9}  (info)")
    for name in gate.missing_in_current:
        lines.append(f"{name:<44} {'gone':>12} {'-':>12} {'':>9}  (info)")
    return "\n".join(lines)


def main(args) -> int:
    """``repro bench`` implementation; returns a process exit code."""
    quick = getattr(args, "quick", False)
    result = run_suite(
        micro=True,
        macro=not (args.micro_only or quick),
        repeat=1 if quick else args.repeat,
        full_fig11=args.full_macro,
    )
    print(format_metrics(result))
    out_path = write_result(result, args.out)
    print(f"\nresult written to {out_path}")

    if getattr(args, "profile", False):
        from repro.bench.macro import profile_macro

        report = profile_macro(
            top_n=getattr(args, "profile_top", 30),
            full_fig11=args.full_macro,
        )
        root, _ = os.path.splitext(out_path)
        profile_path = f"{root}_profile.txt"
        with open(profile_path, "w") as fh:
            fh.write(report)
        print(f"macro cProfile report written to {profile_path}")

    baseline_path = args.compare
    if baseline_path is None and (args.check or args.compare_default):
        baseline_path = default_baseline_path()
        if baseline_path is None:
            print("no committed baseline found "
                  f"({BASELINE_RELPATH}); skipping comparison")
            return 1 if args.check else 0
    if baseline_path is None:
        return 0

    baseline = load_result(baseline_path)
    gate = compare(
        result["metrics"], baseline["metrics"],
        tolerance=args.tolerance, strict=args.strict,
    )
    print()
    print(format_gate(gate, baseline.get("meta", {}).get("rev", "?")))
    if gate.failures:
        print(f"\nGATE FAILED: {len(gate.failures)} metric(s) regressed "
              f"beyond {args.tolerance:.0%} tolerance:")
        for c in gate.failures:
            print(f"  {c.metric}: {_fmt(c.baseline)} -> {_fmt(c.current)} "
                  f"({c.improvement:.2f}x)")
        return 1 if args.check else 0
    print(f"\ngate ok: no gated metric regressed beyond "
          f"{args.tolerance:.0%} tolerance")
    return 0
