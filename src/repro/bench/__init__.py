"""Performance-regression harness: ``repro bench``.

Micro benchmarks time the monitor→identifier hot path (time-series
lookups, aligned Pearson identification, rolling deviation stats, event
engine throughput) against naive reference implementations; macro
benchmarks time the fig9 control scenario and a fig11-scale run
end-to-end.  Results are written to ``BENCH_<rev>.json`` and compared
against the committed baseline (``benchmarks/perf/baseline.json``) with a
tolerance gate — see docs/PERFORMANCE.md.

Layout:

:mod:`repro.bench.naive`
    Reference (pre-optimization) implementations; also the oracle the
    property tests check the optimized paths against.
:mod:`repro.bench.micro` / :mod:`repro.bench.macro`
    The benchmark definitions.
:mod:`repro.bench.gate`
    Baseline comparison and the regression tolerance gate.
:mod:`repro.bench.runner`
    Suite orchestration, JSON result files, and the CLI entry point.
"""

from repro.bench.gate import GateResult, compare
from repro.bench.runner import run_suite, write_result

__all__ = ["GateResult", "compare", "run_suite", "write_result"]
