"""Macro benchmarks: end-to-end scenario timings.

Four scenarios, deliberately spanning the scales the paper evaluates:

* ``control`` — the quickstart mitigation scenario (terasort + fio +
  PerfCloud on one host) run with direct simulator access, so we can
  report simulated-event throughput, not just wall-clock;
* ``fig9`` — the small-scale dynamic-control comparison, exactly the
  public ``figures.fig9`` entry point;
* ``fig11_scale`` — a mid-size cut of the Fig. 11 large-scale experiment
  (2 hosts / 12 workers / 8 jobs); ``full=True`` runs the figure's
  default 5-host / 50-worker / 30-job dimensions instead;
* ``cluster_scale`` — the control plane alone at datacenter width
  (250/500/1,000 hosts, one agent each, no framework jobs), serial and
  across a shard-worker pool.  The ``workersN_speedup_vs_naive`` ratio
  (serial wall / pooled wall at the widest point) is machine-honest: on
  a single-core box it sits near 1.0 and the gate only fails it if
  pooling ever makes stepping *slower* than serial beyond tolerance.

All scenarios are seed-fixed: wall-clock differences between revisions
measure the code, not the workload draw.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = ["run_macro", "bench_cluster_scale", "macro_cases", "profile_macro"]


def bench_control_scenario() -> Dict[str, float]:
    """Quickstart mitigation scenario with engine counters exposed."""
    from repro import (
        CloudManager, Cluster, FioRandomRead, HdfsCluster, JobTracker,
        PerfCloud, Priority, Simulator, teragen, terasort,
    )

    t0 = time.perf_counter()
    sim = Simulator(dt=1.0, seed=7)
    cluster = Cluster(sim)
    cluster.add_host("server0")
    cloud = CloudManager(cluster)
    workers = cloud.boot_many("hdp", 6, priority=Priority.HIGH, app_id="hadoop")
    hdfs = HdfsCluster([w.name for w in workers], sim.rng.stream("hdfs"))
    jt = JobTracker(sim, workers, hdfs)
    vm = cloud.boot("noisy")
    vm.attach_workload(FioRandomRead())
    PerfCloud(sim, cloud)
    jt.submit(terasort(), teragen(640), num_reducers=10)
    sim.run(2000)
    wall = time.perf_counter() - t0
    processed = sim.events_fired + sim.ticks
    return {
        "control.wall_s": wall,
        "control.events_per_s": processed / wall,
        "control.events": float(processed),
    }


def bench_fig9() -> Dict[str, float]:
    """The small-scale control comparison through its public entry point."""
    from repro.experiments import figures

    t0 = time.perf_counter()
    figures.fig9(seeds=(3, 7, 11))
    return {"fig9.wall_s": time.perf_counter() - t0}


def bench_fig11_scale(full: bool = False) -> Dict[str, float]:
    """A fig11-scale multi-host run; ``full`` uses the figure defaults.

    Best-of-2 (like ``cluster_scale``): at ~6 s per pass a single shot
    is long enough for one CPU-steal burst on a shared runner to
    dominate the reading; the min of two passes is what the trajectory
    records.  ``full`` stays single-shot (it runs for minutes).
    """
    from repro.experiments import figures

    dims = {} if full else dict(
        num_hosts=2, num_workers=12, num_mr_jobs=4, num_spark_jobs=4,
        num_antagonist_pairs=2, horizon=6000.0,
    )
    walls = []
    for _ in range(1 if full else 2):
        t0 = time.perf_counter()
        figures.fig11(seed=7, schemes=("late", "perfcloud"), **dims)
        walls.append(time.perf_counter() - t0)
    key = "fig11_full.wall_s" if full else "fig11_scale.wall_s"
    return {key: min(walls)}


def _cluster_scale_run(num_hosts: int, shard_workers: int, *,
                       ticks: int, low_per_host: int, seed: int) -> float:
    """Wall-clock seconds to step ``num_hosts`` agents for ``ticks``
    control intervals (the cluster carries one idle HIGH app VM plus
    ``low_per_host`` idle LOW VMs per host, so every interval pays the
    full monitor → detector → identifier chain but no framework work)."""
    from repro.cloud.nova import CloudManager
    from repro.core.perfcloud import PerfCloud
    from repro.sim.engine import Simulator
    from repro.virt.cluster import Cluster
    from repro.virt.vm import Priority

    sim = Simulator(dt=1.0, seed=seed)
    cluster = Cluster(sim)
    for i in range(num_hosts):
        cluster.add_host(f"server{i:04d}")
    cloud = CloudManager(cluster)
    for i in range(num_hosts):
        host = f"server{i:04d}"
        cloud.boot(f"app{i:04d}", "m1.large", priority=Priority.HIGH,
                   app_id="app", host=host)
        for j in range(low_per_host):
            cloud.boot(f"low{i:04d}-{j}", "m1.large",
                       priority=Priority.LOW, host=host)
    with PerfCloud(sim, cloud, shard_workers=shard_workers) as pc:
        interval = pc.config.interval_s
        t0 = time.perf_counter()
        sim.run_for(ticks * interval + 1.0)
        wall = time.perf_counter() - t0
    return wall


def bench_cluster_scale(
    hosts: Sequence[int] = (250, 500, 1000),
    *,
    shard_workers: int = 8,
    ticks: int = 8,
    low_per_host: int = 2,
    seed: int = 7,
    repeat: int = 2,
) -> Dict[str, float]:
    """Control-plane stepping cost vs cluster width, serial and pooled.

    The serial-vs-pooled ratio is best-of-``repeat`` on both sides so a
    single noisy run (CI boxes) cannot swing the gated metric.
    """
    def best(n: int, workers: int) -> float:
        return min(
            _cluster_scale_run(n, workers, ticks=ticks,
                               low_per_host=low_per_host, seed=seed)
            for _ in range(max(1, repeat))
        )

    out: Dict[str, float] = {}
    widths: Tuple[int, ...] = tuple(hosts)
    for n in widths:
        out[f"cluster_scale.hosts{n}_s"] = best(n, 0)
    widest = max(widths)
    pooled = best(widest, shard_workers)
    out[f"cluster_scale.hosts{widest}_workers{shard_workers}_s"] = pooled
    out[f"cluster_scale.workers{shard_workers}_speedup_vs_naive"] = (
        out[f"cluster_scale.hosts{widest}_s"] / pooled
    )
    return out


def macro_cases(full_fig11: bool = False) -> Dict[str, Callable[[], Dict[str, float]]]:
    """Name → zero-argument thunk for every macro scenario.

    One registry feeds both :func:`run_macro` (timing) and
    :func:`profile_macro` (cProfile), so the two always cover the same
    cases.
    """
    return {
        "control": bench_control_scenario,
        "fig9": bench_fig9,
        "fig11_scale": lambda: bench_fig11_scale(full=full_fig11),
        "cluster_scale": bench_cluster_scale,
    }


def run_macro(full_fig11: bool = False) -> Dict[str, float]:
    """Run every macro scenario; returns ``macro.``-prefixed metrics."""
    out: Dict[str, float] = {}
    for thunk in macro_cases(full_fig11).values():
        for metric, value in thunk().items():
            out[f"macro.{metric}"] = value
    return out


def profile_macro(
    top_n: int = 30,
    full_fig11: bool = False,
    cases: Optional[Sequence[str]] = None,
) -> str:
    """Run each macro case under cProfile; returns the combined report.

    One section per case, functions sorted by cumulative time, top
    ``top_n`` rows.  Profiled walls are distorted by tracing overhead —
    the report ranks *where* time goes; the timing metrics from
    :func:`run_macro` say how much.
    """
    import cProfile
    import io
    import pstats

    sections = []
    for name, thunk in macro_cases(full_fig11).items():
        if cases is not None and name not in cases:
            continue
        prof = cProfile.Profile()
        prof.enable()
        try:
            thunk()
        finally:
            prof.disable()
        buf = io.StringIO()
        pstats.Stats(prof, stream=buf).strip_dirs().sort_stats(
            "cumulative"
        ).print_stats(top_n)
        sections.append(f"==== macro.{name} ====\n{buf.getvalue().strip()}\n")
    return "\n".join(sections)
