"""Macro benchmarks: end-to-end scenario timings.

Three scenarios, deliberately spanning the scales the paper evaluates:

* ``control`` — the quickstart mitigation scenario (terasort + fio +
  PerfCloud on one host) run with direct simulator access, so we can
  report simulated-event throughput, not just wall-clock;
* ``fig9`` — the small-scale dynamic-control comparison, exactly the
  public ``figures.fig9`` entry point;
* ``fig11_scale`` — a mid-size cut of the Fig. 11 large-scale experiment
  (2 hosts / 12 workers / 8 jobs); ``full=True`` runs the figure's
  default 5-host / 50-worker / 30-job dimensions instead.

All scenarios are seed-fixed: wall-clock differences between revisions
measure the code, not the workload draw.
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = ["run_macro"]


def bench_control_scenario() -> Dict[str, float]:
    """Quickstart mitigation scenario with engine counters exposed."""
    from repro import (
        CloudManager, Cluster, FioRandomRead, HdfsCluster, JobTracker,
        PerfCloud, Priority, Simulator, teragen, terasort,
    )

    t0 = time.perf_counter()
    sim = Simulator(dt=1.0, seed=7)
    cluster = Cluster(sim)
    cluster.add_host("server0")
    cloud = CloudManager(cluster)
    workers = cloud.boot_many("hdp", 6, priority=Priority.HIGH, app_id="hadoop")
    hdfs = HdfsCluster([w.name for w in workers], sim.rng.stream("hdfs"))
    jt = JobTracker(sim, workers, hdfs)
    vm = cloud.boot("noisy")
    vm.attach_workload(FioRandomRead())
    PerfCloud(sim, cloud)
    jt.submit(terasort(), teragen(640), num_reducers=10)
    sim.run(2000)
    wall = time.perf_counter() - t0
    processed = sim.events_fired + sim.ticks
    return {
        "control.wall_s": wall,
        "control.events_per_s": processed / wall,
        "control.events": float(processed),
    }


def bench_fig9() -> Dict[str, float]:
    """The small-scale control comparison through its public entry point."""
    from repro.experiments import figures

    t0 = time.perf_counter()
    figures.fig9(seeds=(3, 7, 11))
    return {"fig9.wall_s": time.perf_counter() - t0}


def bench_fig11_scale(full: bool = False) -> Dict[str, float]:
    """A fig11-scale multi-host run; ``full`` uses the figure defaults."""
    from repro.experiments import figures

    dims = {} if full else dict(
        num_hosts=2, num_workers=12, num_mr_jobs=4, num_spark_jobs=4,
        num_antagonist_pairs=2, horizon=6000.0,
    )
    t0 = time.perf_counter()
    figures.fig11(seed=7, schemes=("late", "perfcloud"), **dims)
    key = "fig11_full.wall_s" if full else "fig11_scale.wall_s"
    return {key: time.perf_counter() - t0}


def run_macro(full_fig11: bool = False) -> Dict[str, float]:
    """Run every macro scenario; returns ``macro.``-prefixed metrics."""
    out: Dict[str, float] = {}
    for metrics in (
        bench_control_scenario(),
        bench_fig9(),
        bench_fig11_scale(full=full_fig11),
    ):
        for metric, value in metrics.items():
            out[f"macro.{metric}"] = value
    return out
