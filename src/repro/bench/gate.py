"""Baseline comparison and the performance-regression tolerance gate.

Every metric is classified by :func:`metric_kind`:

``ratio``
    Optimized-vs-naive speedups measured in one process on one machine.
    Machine-independent, so they are **always gated**: if a speedup decays
    past the tolerance, an optimization regressed no matter whose laptop
    or CI runner noticed.
``throughput`` / ``latency``
    Absolute numbers (ops/s, wall seconds, µs per call).  Comparable only
    on the machine that produced the baseline — gated when ``strict``
    (e.g. ``make bench`` locally), reported otherwise.

A metric regresses when it is worse than baseline by more than
``tolerance`` (relative).  Improvements never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Comparison", "GateResult", "metric_kind", "compare"]

#: Default relative tolerance before a worse-than-baseline metric fails.
DEFAULT_TOLERANCE = 0.30


def metric_kind(name: str) -> str:
    """``ratio`` | ``throughput`` | ``latency`` for a metric name."""
    if name.endswith("speedup_vs_naive"):
        return "ratio"
    if "per_s" in name.rsplit(".", 1)[-1]:
        return "throughput"
    return "latency"  # wall_s, us_per_*, events counts


def _higher_is_better(kind: str) -> bool:
    return kind in ("ratio", "throughput")


@dataclass
class Comparison:
    """One metric's baseline-vs-current verdict."""

    metric: str
    kind: str
    baseline: float
    current: float
    #: current/baseline for higher-is-better metrics, baseline/current
    #: otherwise — > 1 always means "got better".
    improvement: float
    gated: bool
    regressed: bool


@dataclass
class GateResult:
    """Outcome of comparing a bench result against a baseline."""

    comparisons: List[Comparison] = field(default_factory=list)
    #: Metrics present on only one side (ungated, reported for visibility).
    missing_in_current: List[str] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.failures


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    strict: bool = False,
    only: Optional[List[str]] = None,
) -> GateResult:
    """Gate ``current`` metrics against ``baseline``.

    Parameters
    ----------
    tolerance:
        Allowed relative degradation before a gated metric fails.
    strict:
        Also gate machine-dependent absolute metrics (same-machine runs).
    only:
        Restrict gating to metric names with one of these prefixes
        (comparison rows are still produced for everything).
    """
    result = GateResult()
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            result.missing_in_current.append(name)
            continue
        if name not in baseline:
            result.missing_in_baseline.append(name)
            continue
        kind = metric_kind(name)
        base, cur = float(baseline[name]), float(current[name])
        if _higher_is_better(kind):
            improvement = cur / base if base else float("inf")
        else:
            improvement = base / cur if cur else float("inf")
        gated = kind == "ratio" or strict
        if only is not None:
            gated = gated and any(name.startswith(p) for p in only)
        regressed = gated and improvement < 1.0 - tolerance
        result.comparisons.append(Comparison(
            metric=name, kind=kind, baseline=base, current=cur,
            improvement=improvement, gated=gated, regressed=regressed,
        ))
    return result
