"""Declarative fault plans.

A :class:`FaultPlan` names every fault the injector can throw and how
often; a plan plus a root seed fully determines the injected-fault trace
(see :class:`~repro.faults.injector.FaultInjector`).  All probabilities
are per *call* (the node manager makes a handful of libvirt calls per VM
per 5-second interval), so e.g. ``call_failure_p=0.1`` means roughly one
in ten facade calls raises a transient ``LibvirtError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

__all__ = ["CrashEvent", "FaultPlan"]


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled VM crash (and later restart).

    While down, every stats/actuation call against the domain raises
    ``LibvirtError`` and the guest's workload makes no progress.  On
    restart the guest reboots: its cumulative counters restart from zero
    and any cgroup caps are lost (a fresh domain boots uncapped) — the
    control plane has to re-detect and re-assert.
    """

    vm: str
    at_s: float
    restart_after_s: float = 30.0

    def __post_init__(self) -> None:
        if not self.vm:
            raise ValueError("crash event needs a VM name")
        if self.at_s < 0:
            raise ValueError(f"crash time must be non-negative, got {self.at_s!r}")
        if self.restart_after_s <= 0:
            raise ValueError(
                f"restart_after_s must be positive, got {self.restart_after_s!r}"
            )


def _check_p(name: str, p: Optional[float]) -> None:
    if p is not None and not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {p!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector may throw at the control plane.

    ``persistent_failures`` entries are ``(vm, method)`` pairs that fail
    on *every* call (``"*"`` wildcards either side) — the persistent
    counterpart of the probabilistic transient failures.
    """

    # -- transient call failures (LibvirtError) -----------------------------
    #: Any Domain-level facade call.
    call_failure_p: float = 0.0
    #: Override for stats reads (blkioStats/perfStats/cpuStats and the
    #: blockIoTune/schedulerParameters read-backs); None = call_failure_p.
    sampling_failure_p: Optional[float] = None
    #: Override for actuation writes (setBlockIoTune/setSchedulerParameters);
    #: None = call_failure_p.
    actuation_failure_p: Optional[float] = None
    #: Connection-level calls (listAllDomains) — loses a whole interval.
    connection_failure_p: float = 0.0
    #: (vm, method) pairs that always fail; "*" wildcards either side.
    persistent_failures: Tuple[Tuple[str, str], ...] = ()

    # -- telemetry corruption ----------------------------------------------
    #: Per stats-read chance the counters freeze (go stale) for a while.
    freeze_p: float = 0.0
    freeze_duration_s: float = 15.0
    #: Reset every targeted VM's cumulative counters this often (guest
    #: reboot without downtime); None disables periodic resets.
    counter_reset_period_s: Optional[float] = None
    #: Per sampling pass chance one VM's counters reset.
    counter_reset_p: float = 0.0

    # -- actuation latency --------------------------------------------------
    #: Chance an actuation call returns immediately but only takes effect
    #: after ``latency_s`` (the paper's <30 ms apply latency gone bad).
    latency_p: float = 0.0
    latency_s: float = 2.0

    # -- scheduled churn ----------------------------------------------------
    crashes: Tuple[CrashEvent, ...] = ()

    # -- targeting ----------------------------------------------------------
    #: Restrict probabilistic faults to these VMs; None = every VM.
    vms: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for f in ("call_failure_p", "connection_failure_p", "freeze_p",
                  "counter_reset_p", "latency_p"):
            _check_p(f, getattr(self, f))
        _check_p("sampling_failure_p", self.sampling_failure_p)
        _check_p("actuation_failure_p", self.actuation_failure_p)
        if self.freeze_duration_s <= 0:
            raise ValueError("freeze_duration_s must be positive")
        if self.counter_reset_period_s is not None and self.counter_reset_period_s <= 0:
            raise ValueError("counter_reset_period_s must be positive or None")
        if self.latency_s <= 0:
            raise ValueError("latency_s must be positive")
        for pair in self.persistent_failures:
            if len(pair) != 2 or not all(isinstance(x, str) and x for x in pair):
                raise ValueError(
                    f"persistent_failures entries are (vm, method) pairs, got {pair!r}"
                )

    # ------------------------------------------------------------- helpers
    @property
    def sampling_p(self) -> float:
        """Effective stats-read failure probability."""
        return (self.sampling_failure_p if self.sampling_failure_p is not None
                else self.call_failure_p)

    @property
    def actuation_p(self) -> float:
        """Effective actuation-write failure probability."""
        return (self.actuation_failure_p if self.actuation_failure_p is not None
                else self.call_failure_p)

    def targets(self, vm: str) -> bool:
        """Whether probabilistic faults apply to ``vm``."""
        return self.vms is None or vm in self.vms

    def describe(self) -> str:
        """Compact non-default-field summary (for traces and reports)."""
        parts = []
        for f in fields(self):
            v = getattr(self, f.name)
            if v != f.default and f.name != "crashes":
                parts.append(f"{f.name}={v!r}")
        for ev in self.crashes:
            parts.append(f"crash({ev.vm}@{ev.at_s:g}+{ev.restart_after_s:g})")
        return ", ".join(parts) or "no-faults"
