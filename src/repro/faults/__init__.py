"""Deterministic fault injection for the PerfCloud control plane.

A production node manager is a long-running per-host daemon: it must
survive libvirt hiccups, stale or dropped telemetry, cumulative-counter
resets after guest reboots, slow actuation, and VMs crashing under it
(paper §III-D2; PANDA and Alioth make the same point for noisy
production telemetry).  This package provides the adversary:

* :mod:`~repro.faults.spec` — declarative, validated fault plans
  (:class:`FaultPlan`, :class:`CrashEvent`);
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, which wraps
  the libvirt facade (``Connection``/``Domain`` decorators) and injects
  faults drawn from named :mod:`repro.sim.rng` streams, so that the same
  seed and plan always produce the same fault trace.

With no injector installed the control plane never touches this package
— the clean path is byte-identical to an injection-free build.
"""

from repro.faults.injector import FaultInjector, FaultyConnection, FaultyDomain
from repro.faults.spec import CrashEvent, FaultPlan

__all__ = [
    "CrashEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyConnection",
    "FaultyDomain",
]
