"""Seedable fault injector wrapping the libvirt facade.

:class:`FaultInjector` decorates a :class:`~repro.virt.libvirt_api.Connection`
(and every :class:`~repro.virt.libvirt_api.Domain` handed out through it)
with fault behaviour drawn from named :mod:`repro.sim.rng` streams:

* transient ``LibvirtError`` on any stats or actuation call, plus
  persistent per-(vm, method) breakage;
* frozen (stale) counter snapshots and cumulative-counter resets — the
  two telemetry corruptions a guest reboot or a wedged stats path
  produces;
* latency spikes on actuation (the call returns, the cap lands late);
* scheduled VM crash/restart events: while down every call against the
  domain fails and the guest makes no progress; on restart the counters
  restart from zero and the cgroup caps are wiped.

Every injected fault is appended to :attr:`FaultInjector.trace`, so two
runs with the same root seed and the same :class:`FaultPlan` produce an
identical trace (`digest()` hashes it for cheap comparison).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.faults.spec import CrashEvent, FaultPlan
from repro.virt.libvirt_api import Connection, Domain, LibvirtError

__all__ = ["FaultInjector", "FaultyConnection", "FaultyDomain"]

#: Stats reads (counter sampling and cap read-backs).
SAMPLING_METHODS = frozenset({
    "blkioStats", "perfStats", "cpuStats", "blockIoTune", "schedulerParameters",
})
#: Actuation writes.
ACTUATION_METHODS = frozenset({"setBlockIoTune", "setSchedulerParameters"})


class FaultInjector:
    """Injects faults into one host's libvirt facade, reproducibly.

    Parameters
    ----------
    sim:
        The simulator; supplies time, scheduling and the seeded RNG
        registry (streams ``faults.calls``, ``faults.freeze``,
        ``faults.reset``).
    plan:
        What to inject, and how often.
    cluster:
        Needed only for crash/restart events (to pause and resume the
        guest's workload and wipe its caps on reboot); None disables the
        workload side of crashes.
    """

    def __init__(self, sim, plan: FaultPlan, cluster=None) -> None:
        self.sim = sim
        self.plan = plan
        self.cluster = cluster
        #: (time, kind, target, detail) tuples, in injection order.
        self.trace: List[Tuple[float, str, str, str]] = []
        self.counts: Counter = Counter()
        #: Runtime-broken (vm, method) pairs, on top of the plan's
        #: persistent failures; tests and scenarios flip these live.
        self._broken: set = set()
        self._down: Dict[str, float] = {}
        self._saved_drivers: Dict[str, object] = {}
        #: vm -> time of the latest counter reset.
        self._reset_at: Dict[str, float] = {}
        #: (vm, kind) -> (reset time the baseline covers, baseline counters).
        self._baselines: Dict[Tuple[str, str], Tuple[float, Dict[str, float]]] = {}
        #: (vm, kind) -> (frozen-until time, frozen snapshot).
        self._frozen: Dict[Tuple[str, str], Tuple[float, Dict[str, float]]] = {}
        for ev in plan.crashes:
            sim.schedule_at(ev.at_s, lambda e=ev: self._crash(e),
                            name=f"fault-crash-{ev.vm}")
        if plan.counter_reset_period_s is not None:
            sim.every(plan.counter_reset_period_s, self._periodic_reset,
                      name="fault-counter-reset")

    # ----------------------------------------------------------------- wrap
    def wrap(self, conn: Connection) -> "FaultyConnection":
        """Decorate a connection (and all domains it hands out)."""
        return FaultyConnection(self, conn)

    # ------------------------------------------------------------ breakage
    def break_call(self, vm: str, method: str) -> None:
        """Make (vm, method) fail on every call until :meth:`heal`."""
        self._broken.add((vm, method))

    def heal(self, vm: str, method: str) -> None:
        """Undo :meth:`break_call` (no-op if not broken)."""
        self._broken.discard((vm, method))

    # ------------------------------------------------------------- faulting
    def on_call(self, vm: str, method: str) -> None:
        """Raise ``LibvirtError`` if this call should fail."""
        if vm in self._down:
            self._record("down-call", vm, method)
            raise LibvirtError(f"domain {vm!r} is not running")
        for pair in ((vm, method), ("*", method), (vm, "*")):
            if pair in self._broken or pair in self.plan.persistent_failures:
                self._record("persistent-failure", vm, method)
                raise LibvirtError(f"injected persistent failure: {vm}.{method}")
        if not self.plan.targets(vm):
            return
        p = (self.plan.sampling_p if method in SAMPLING_METHODS
             else self.plan.actuation_p if method in ACTUATION_METHODS
             else self.plan.call_failure_p)
        if p > 0.0 and self._stream("calls").random() < p:
            self._record("call-failure", vm, method)
            raise LibvirtError(f"injected transient failure: {vm}.{method}")

    def on_connection_call(self, method: str) -> None:
        """Raise ``LibvirtError`` if a connection-level call should fail."""
        p = self.plan.connection_failure_p
        if p > 0.0 and self._stream("calls").random() < p:
            self._record("connection-failure", "conn", method)
            raise LibvirtError(f"injected connection failure: {method}")

    def transform_counters(
        self, vm: str, kind: str, raw: Dict[str, float], *, reset_draw: bool = False
    ) -> Dict[str, float]:
        """Apply reset baselines and freezes to one cumulative-counter read.

        ``reset_draw`` is set on the first stats read of a sampling pass
        (blkioStats) so the probabilistic per-pass reset is drawn once
        per VM, not once per counter group.
        """
        now = self.sim.now
        if (reset_draw and self.plan.counter_reset_p > 0.0 and self.plan.targets(vm)
                and self._stream("reset").random() < self.plan.counter_reset_p):
            self.mark_reset(vm)
        out = self._rebased(vm, kind, raw)
        key = (vm, kind)
        frozen = self._frozen.get(key)
        if frozen is not None:
            until, snapshot = frozen
            if now < until:
                self.counts["frozen-reads"] += 1
                return dict(snapshot)
            del self._frozen[key]
        if (self.plan.freeze_p > 0.0 and self.plan.targets(vm)
                and self._stream("freeze").random() < self.plan.freeze_p):
            self._frozen[key] = (now + self.plan.freeze_duration_s, dict(out))
            self._record("freeze", vm, f"{kind} for {self.plan.freeze_duration_s:g}s")
        return out

    def actuation_delay(self, vm: str, method: str) -> Optional[float]:
        """Latency spike for one actuation call, or None for none."""
        if (self.plan.latency_p > 0.0 and self.plan.targets(vm)
                and self._stream("calls").random() < self.plan.latency_p):
            self._record("latency", vm, f"{method} +{self.plan.latency_s:g}s")
            return self.plan.latency_s
        return None

    def mark_reset(self, vm: str) -> None:
        """Reset ``vm``'s cumulative counters (as observed downstream)."""
        self._reset_at[vm] = self.sim.now
        self._record("counter-reset", vm, "")

    def is_down(self, vm: str) -> bool:
        """Whether ``vm`` is currently crashed."""
        return vm in self._down

    # ------------------------------------------------------------ determinism
    def digest(self) -> str:
        """Stable hash of the injected-fault trace."""
        h = hashlib.sha256()
        for t, kind, target, detail in self.trace:
            h.update(f"{t:.6f}|{kind}|{target}|{detail}\n".encode())
        return h.hexdigest()

    def fault_counts(self) -> Dict[str, int]:
        """Injected-fault totals by kind (deterministically ordered)."""
        return {k: self.counts[k] for k in sorted(self.counts)}

    # -------------------------------------------------------------- internals
    def _stream(self, name: str):
        return self.sim.rng.stream(f"faults.{name}")

    def _record(self, kind: str, target: str, detail: str) -> None:
        self.trace.append((self.sim.now, kind, target, detail))
        self.counts[kind] += 1

    def _rebased(self, vm: str, kind: str, raw: Dict[str, float]) -> Dict[str, float]:
        reset_time = self._reset_at.get(vm)
        if reset_time is None:
            return raw
        key = (vm, kind)
        base = self._baselines.get(key)
        if base is None or base[0] < reset_time:
            self._baselines[key] = (reset_time, dict(raw))
            base = self._baselines[key]
        baseline = base[1]
        return {k: max(0.0, v - baseline.get(k, 0.0)) for k, v in raw.items()}

    def _periodic_reset(self) -> None:
        for vm in self._reset_targets():
            self.mark_reset(vm)

    def _reset_targets(self) -> List[str]:
        if self.plan.vms is not None:
            return sorted(self.plan.vms)
        if self.cluster is not None:
            return sorted(self.cluster.vms)
        return sorted({vm for vm, _ in self._baselines} | set(self._reset_at))

    def _crash(self, ev: CrashEvent) -> None:
        if ev.vm in self._down:
            return
        self._down[ev.vm] = self.sim.now
        self._record("crash", ev.vm, f"restart in {ev.restart_after_s:g}s")
        if self.cluster is not None:
            guest = self.cluster.vms.get(ev.vm)
            if guest is not None and guest.driver is not None:
                self._saved_drivers[ev.vm] = guest.driver
                guest.clear_workload()
        self.sim.schedule(ev.restart_after_s, lambda: self._restart(ev.vm),
                          name=f"fault-restart-{ev.vm}")

    def _restart(self, vm: str) -> None:
        self._down.pop(vm, None)
        self.mark_reset(vm)  # reboot: cumulative counters restart at zero
        self._record("restart", vm, "")
        if self.cluster is not None:
            guest = self.cluster.vms.get(vm)
            if guest is not None:
                # A rebooted domain comes back uncapped; the control plane
                # must notice the drift and re-assert its caps.
                guest.cgroup.throttle.iops_cap = None
                guest.cgroup.throttle.bps_cap = None
                guest.cgroup.cpu.quota_cores = None
                driver = self._saved_drivers.pop(vm, None)
                if driver is not None:
                    guest.attach_workload(driver)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(plan=[{self.plan.describe()}], "
                f"injected={sum(self.counts.values())})")


class FaultyDomain:
    """Fault-decorated :class:`~repro.virt.libvirt_api.Domain`."""

    def __init__(self, injector: FaultInjector, dom: Domain) -> None:
        self._inj = injector
        self._dom = dom

    # Identity reads never fault — even a crashed domain keeps its name.
    def name(self) -> str:
        return self._dom.name()

    def vcpus(self) -> int:
        return self._dom.vcpus()

    # ------------------------------------------------------------------ stats
    def blkioStats(self) -> Dict[str, float]:
        vm = self._dom.name()
        self._inj.on_call(vm, "blkioStats")
        return self._inj.transform_counters(
            vm, "blkio", self._dom.blkioStats(), reset_draw=True
        )

    def perfStats(self) -> Dict[str, float]:
        vm = self._dom.name()
        self._inj.on_call(vm, "perfStats")
        return self._inj.transform_counters(vm, "perf", self._dom.perfStats())

    def cpuStats(self) -> Dict[str, float]:
        vm = self._dom.name()
        self._inj.on_call(vm, "cpuStats")
        return self._inj.transform_counters(vm, "cpu", self._dom.cpuStats())

    def blockIoTune(self, device: str = "vda") -> Dict[str, float]:
        self._inj.on_call(self._dom.name(), "blockIoTune")
        return self._dom.blockIoTune(device)

    def schedulerParameters(self) -> Dict[str, int]:
        self._inj.on_call(self._dom.name(), "schedulerParameters")
        return self._dom.schedulerParameters()

    # -------------------------------------------------------------- actuation
    def setBlockIoTune(self, device: str, params: Dict[str, float]) -> None:
        vm = self._dom.name()
        self._inj.on_call(vm, "setBlockIoTune")
        delay = self._inj.actuation_delay(vm, "setBlockIoTune")
        if delay is None:
            self._dom.setBlockIoTune(device, params)
        else:
            self._defer(delay, lambda: self._dom.setBlockIoTune(device, dict(params)))

    def setSchedulerParameters(self, params: Dict[str, int]) -> None:
        vm = self._dom.name()
        self._inj.on_call(vm, "setSchedulerParameters")
        delay = self._inj.actuation_delay(vm, "setSchedulerParameters")
        if delay is None:
            self._dom.setSchedulerParameters(params)
        else:
            self._defer(delay, lambda: self._dom.setSchedulerParameters(dict(params)))

    def _defer(self, delay: float, apply) -> None:
        def late() -> None:
            try:
                apply()
            except Exception:
                # The domain vanished while the cap was in flight.
                self._inj._record("latency-apply-dropped", self._dom.name(), "")

        self._inj.sim.schedule(delay, late, name="fault-late-actuation")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyDomain({self._dom.name()!r})"


class FaultyConnection:
    """Fault-decorated :class:`~repro.virt.libvirt_api.Connection`."""

    def __init__(self, injector: FaultInjector, conn: Connection) -> None:
        self._inj = injector
        self._conn = conn

    def hostname(self) -> str:
        return self._conn.hostname()

    def listAllDomains(self) -> List[FaultyDomain]:
        self._inj.on_connection_call("listAllDomains")
        return [FaultyDomain(self._inj, d) for d in self._conn.listAllDomains()]

    def lookupByName(self, name: str) -> FaultyDomain:
        return FaultyDomain(self._inj, self._conn.lookupByName(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyConnection({self._conn!r})"
