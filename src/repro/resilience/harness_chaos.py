"""Chaos drills for the *harness itself*: kill, wedge and corrupt it.

:mod:`repro.experiments.chaos` attacks the simulated control plane;
this module attacks the experiment harness — the supervised process
pool and the result cache — and proves the supervision layer delivers
what it promises: a merged result **byte-identical to a clean serial
run** despite workers being SIGKILLed mid-task, frozen with SIGSTOP
(heartbeat loss), stalled past their deadline, crashing with
exceptions, and cache entries being corrupted between runs.

Faults are delivered through a *marker-file* protocol so the task
runner keeps the plain ``runner(task)`` shape: the first attempt of a
targeted task creates its marker and then misbehaves; the retry sees
the marker and runs normally.  Every fault only fires when
:data:`~repro.resilience.supervisor.WORKER_ENV` is set — i.e. inside a
supervised worker process — so a task that falls through to the
serial-fallback rung (or the clean reference run) can never SIGKILL
the parent.

Determinism: with speculation disabled, the same plan and seed produce
the same per-task final statuses (killed → ``retried``, stalled →
``retried``, clean → ``ok``) and the same merged values, captured in a
single trace digest that two runs of :func:`run_harness_chaos` can be
compared on.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import ResultCache, stable_hash, task_key
from repro.experiments.parallel import RunReport, run_many_report
from repro.resilience.supervisor import (
    WORKER_ENV,
    SupervisorPolicy,
    run_many_supervised_report,
)

__all__ = [
    "ChaosTask",
    "HarnessChaosPlan",
    "HarnessChaosResult",
    "default_harness_plan",
    "run_harness_chaos",
]


@dataclass(frozen=True)
class ChaosTask:
    """One unit of deterministic work; identity is ``(seed, index)``."""

    index: int
    seed: int
    #: Iterations of the burn loop (timing texture, still milliseconds).
    work: int = 20000


def chaos_task_key(task: ChaosTask) -> str:
    """Cache key over the task identity only.

    Fault targeting lives in a side-channel plan file precisely so it
    can never leak into the key: a killed-then-retried task must hit the
    same cache slot as its clean twin.
    """
    return task_key(task)


def _chaos_value(task: ChaosTask) -> Dict[str, int]:
    seeded = hashlib.sha256(f"{task.seed}:{task.index}".encode()).hexdigest()
    value = int(seeded[:12], 16)
    acc = value
    for _ in range(task.work):
        acc = (acc * 1103515245 + 12345) % (1 << 31)
    return {"index": task.index, "value": value, "acc": acc}


def _chaos_runner(plan_path: str, task: ChaosTask) -> Dict[str, int]:
    """Task runner with marker-file fault delivery (first attempt only)."""
    with open(plan_path, encoding="utf-8") as fh:
        plan = json.load(fh)
    fault = plan["faults"].get(str(task.index))
    if fault is not None and os.environ.get(WORKER_ENV):
        marker = Path(plan["marker_dir"]) / f"task-{task.index}"
        if not marker.exists():
            marker.touch()
            kind = fault["kind"]
            if kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif kind == "sigstop":
                # Freezes the heartbeat thread too — the parent must
                # notice via heartbeat staleness, not pipe EOF.
                os.kill(os.getpid(), signal.SIGSTOP)
            elif kind == "stall":
                time.sleep(fault.get("stall_s", 3600.0))
            elif kind == "raise":
                raise RuntimeError(
                    f"injected harness fault for task {task.index}"
                )
    return _chaos_value(task)


@dataclass(frozen=True)
class HarnessChaosPlan:
    """Which tasks get which harness fault (indices into the task list)."""

    n_tasks: int = 12
    seed: int = 0
    kills: Tuple[int, ...] = ()        # SIGKILL mid-task (pipe EOF path)
    sigstops: Tuple[int, ...] = ()     # freeze (heartbeat-loss path)
    stalls: Tuple[int, ...] = ()       # sleep past deadline (timeout path)
    raises_: Tuple[int, ...] = ()      # ordinary exception (retry path)
    corrupt: Tuple[int, ...] = ()      # cache entries corrupted post-run
    stall_s: float = 30.0
    work: int = 20000

    def __post_init__(self) -> None:
        targeted: List[int] = []
        for group in (self.kills, self.sigstops, self.stalls, self.raises_):
            targeted.extend(group)
        if len(set(targeted)) != len(targeted):
            raise ValueError("a task may carry at most one harness fault")
        for i in targeted + list(self.corrupt):
            if not 0 <= i < self.n_tasks:
                raise ValueError(f"fault target {i} outside task range")

    def faults(self) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for i in self.kills:
            out[str(i)] = {"kind": "kill"}
        for i in self.sigstops:
            out[str(i)] = {"kind": "sigstop"}
        for i in self.stalls:
            out[str(i)] = {"kind": "stall", "stall_s": self.stall_s}
        for i in self.raises_:
            out[str(i)] = {"kind": "raise"}
        return out

    def tasks(self) -> List[ChaosTask]:
        return [
            ChaosTask(index=i, seed=self.seed, work=self.work)
            for i in range(self.n_tasks)
        ]


def default_harness_plan(seed: int = 0) -> HarnessChaosPlan:
    """The `repro chaos --harness` mix: every failure mode at once."""
    return HarnessChaosPlan(
        n_tasks=12, seed=seed,
        kills=(2, 7), sigstops=(4,), stalls=(9,), raises_=(6,),
        corrupt=(1, 5),
    )


@dataclass
class HarnessChaosResult:
    """Outcome of one full harness-chaos drill."""

    survived: bool
    identical: bool
    recovered_from_corruption: bool
    statuses: Dict[int, str]
    digest: str
    chaos_report: RunReport
    rerun_report: Optional[RunReport]
    elapsed: float

    def summary(self) -> Dict[str, Any]:
        stats = self.chaos_report.supervisor
        return {
            "survived": self.survived,
            "identical": self.identical,
            "recovered_from_corruption": self.recovered_from_corruption,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "digest": self.digest,
            "supervisor": stats.to_dict() if stats is not None else None,
            "elapsed_s": round(self.elapsed, 3),
        }


def run_harness_chaos(
    plan: Optional[HarnessChaosPlan] = None,
    *,
    workers: int = 4,
    policy: Optional[SupervisorPolicy] = None,
    cache_dir: Optional[str] = None,
    work_dir: Optional[str] = None,
) -> HarnessChaosResult:
    """Run the drill: reference → supervised chaos → corrupt → warm rerun.

    1. A clean **serial** run (no pool, no cache, no faults) computes
       the reference results.
    2. A **supervised** run executes the same tasks under the fault
       plan, writing into a result cache; its merged results must be
       byte-identical to the reference.
    3. The cache entries of ``plan.corrupt`` are overwritten with
       garbage, then a warm rerun must detect the corruption, recompute
       exactly those tasks, and again match the reference.
    """
    plan = plan or default_harness_plan()
    start = time.perf_counter()
    tasks = plan.tasks()

    # Chaos timing must dominate the task runtime (milliseconds) but
    # keep the whole drill in seconds: stalls are caught by the task
    # deadline, SIGSTOPs by heartbeat staleness.
    policy = policy or SupervisorPolicy(
        task_timeout_s=2.0,
        heartbeat_interval_s=0.05,
        heartbeat_grace_s=1.0,
        max_retries=2,
        backoff_base_s=0.01,
        backoff_max_s=0.1,
        seed=plan.seed,
        speculate=False,  # keeps attempt counts, hence the digest, stable
        # Kills, freezes and stalls each cost one worker; budget them
        # all plus slack so the pool never falls through to serial.
        max_respawns=max(
            4, len(plan.kills) + len(plan.sigstops) + len(plan.stalls) + 2
        ),
    )

    with tempfile.TemporaryDirectory(dir=work_dir) as tmp:
        marker_dir = Path(tmp) / "markers"
        marker_dir.mkdir()
        plan_path = Path(tmp) / "plan.json"
        plan_path.write_text(json.dumps({
            "marker_dir": str(marker_dir),
            "faults": plan.faults(),
        }), encoding="utf-8")
        runner = functools.partial(_chaos_runner, str(plan_path))

        # Phase 1: clean serial reference (markers untouched — faults
        # are gated on WORKER_ENV, unset in this process).
        reference = run_many_report(tasks, runner, workers=0).results

        # Phase 2: supervised run under fire.
        cache_root = cache_dir or str(Path(tmp) / "cache")
        cache = ResultCache(cache_root)
        chaos_report = run_many_supervised_report(
            tasks, runner, workers=workers, policy=policy,
            cache=cache, key_fn=chaos_task_key,
        )
        identical = chaos_report.results == reference

        # Phase 3: corrupt cache entries, then a warm supervised rerun
        # (markers persist, so every fault is now inert) must recompute
        # exactly the corrupted tasks and still match the reference.
        rerun_report: Optional[RunReport] = None
        recovered = True
        if plan.corrupt:
            for i in plan.corrupt:
                cache.corrupt(chaos_task_key(tasks[i]))
            rerun_report = run_many_supervised_report(
                tasks, runner, workers=workers, policy=policy,
                cache=cache, key_fn=chaos_task_key,
            )
            recovered = (
                rerun_report.results == reference
                and rerun_report.executed == len(set(plan.corrupt))
            )

    statuses = {o.index: o.status for o in chaos_report.outcomes}
    digest = stable_hash({
        "plan": plan,
        "statuses": sorted(statuses.items()),
        "results": reference,
    })[:16]
    survived = bool(chaos_report.ok and identical and recovered)
    return HarnessChaosResult(
        survived=survived,
        identical=identical,
        recovered_from_corruption=recovered,
        statuses=statuses,
        digest=digest,
        chaos_report=chaos_report,
        rerun_report=rerun_report,
        elapsed=time.perf_counter() - start,
    )
