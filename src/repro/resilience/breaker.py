"""Per-host circuit breaker over the libvirt facade.

The fault layer (:mod:`repro.faults`) makes libvirt calls *fail*; the
node manager already retries individual actuations.  What retries cannot
express is "this host's control channel is broken right now — stop
hammering it and stop trusting what it says".  The
:class:`CircuitBreaker` adds that judgement as a classic three-state
machine:

``CLOSED``
    Calls flow through.  Failures within a sliding window are counted;
    reaching ``failure_threshold`` trips the breaker.
``OPEN``
    Calls are refused locally (:class:`BreakerOpen`) without touching
    libvirt.  After a seeded-jitter cooldown the breaker admits probes.
``HALF_OPEN``
    A bounded number of real calls are let through as probes.  Any
    probe failure re-opens (with exponentially longer cooldown);
    ``close_after`` consecutive probe successes close the breaker and
    reset the backoff streak.

Failures are counted within ``window_s`` rather than consecutively on
purpose: a host whose *sampling* calls succeed but whose *actuation*
calls always fail would never accumulate consecutive failures, yet its
control channel is exactly as broken as the paper's fallback scenario
assumes.

:class:`GuardedConnection` / :class:`GuardedDomain` wrap the (possibly
fault-injected) facade so every libvirt call reports into one breaker
per host.  They wrap *outside* the fault injector: the injector models
the world misbehaving, the breaker is PerfCloud's defensive reaction
to it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from repro.virt.libvirt_api import LibvirtError

__all__ = [
    "BreakerOpen",
    "BreakerPolicy",
    "CircuitBreaker",
    "GuardedConnection",
    "GuardedDomain",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpen(LibvirtError):
    """Raised locally instead of performing a call while the breaker is open.

    Subclasses :class:`LibvirtError` deliberately: to every existing
    guard in the monitor and node manager, a refused call looks exactly
    like a failing facade — already retried, already survived — so the
    breaker can be layered under them without new except-clauses.
    """

    def __init__(self, host: str, retry_at: float) -> None:
        super().__init__(
            f"circuit breaker for host {host!r} is open (probe at "
            f"t={retry_at:.1f}s)"
        )
        self.host = host
        self.retry_at = retry_at


@dataclass(frozen=True)
class BreakerPolicy:
    """Breaker thresholds; defaults suit 1 s control intervals."""

    #: Failures within ``window_s`` that trip CLOSED → OPEN.
    failure_threshold: int = 5
    #: Sliding window for the failure count.
    window_s: float = 30.0
    #: Base OPEN cooldown before probing; doubles per consecutive reopen.
    open_cooldown_s: float = 10.0
    #: Cooldown ceiling.
    max_cooldown_s: float = 120.0
    #: Consecutive HALF_OPEN probe successes that close the breaker.
    close_after: int = 3
    #: Concurrent probes admitted while HALF_OPEN (per state entry).
    probe_budget: int = 2
    #: Seed for cooldown jitter (±20%), so many hosts tripping on the
    #: same fault don't all probe in lockstep.
    seed: int = 0


class CircuitBreaker:
    """Three-state breaker driven by an external monotonic clock.

    The simulator owns time, so every method takes ``now`` explicitly —
    nothing here reads a wall clock, which keeps breaker behavior
    deterministic and replayable under a fixed seed.
    """

    def __init__(self, host: str, policy: Optional[BreakerPolicy] = None) -> None:
        self.host = host
        self.policy = policy or BreakerPolicy()
        self.state = CLOSED
        self._failures: Deque[float] = deque()
        self._rng = random.Random((self.policy.seed, host).__repr__())
        self._probe_at = 0.0       # earliest probe admission while OPEN
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._reopen_streak = 0    # consecutive OPEN entries without a close
        # Counters (monotone; ladder logic diffs them).
        self.opens = 0
        self.closes = 0
        self.refused = 0
        self.probe_failures = 0

    # -- queries ---------------------------------------------------------

    def allows(self, now: float) -> bool:
        """Whether a call may proceed right now (advances OPEN→HALF_OPEN)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self._probe_at:
                self._enter_half_open()
            else:
                return False
        # HALF_OPEN: admit up to the probe budget.
        return self._probes_in_flight < self.policy.probe_budget

    def check(self, now: float) -> None:
        """Raise :class:`BreakerOpen` unless a call may proceed."""
        if not self.allows(now):
            self.refused += 1
            raise BreakerOpen(self.host, self._probe_at)

    # -- transitions -----------------------------------------------------

    def _enter_half_open(self) -> None:
        self.state = HALF_OPEN
        self._probes_in_flight = 0
        self._probe_successes = 0

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.opens += 1
        self._reopen_streak += 1
        cooldown = min(
            self.policy.max_cooldown_s,
            self.policy.open_cooldown_s * (2 ** (self._reopen_streak - 1)),
        )
        self._probe_at = now + cooldown * (0.8 + 0.4 * self._rng.random())
        self._failures.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0

    def record_start(self, now: float) -> None:
        """Note that an admitted call is beginning (probe accounting)."""
        if self.state == HALF_OPEN:
            self._probes_in_flight += 1

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.policy.close_after:
                self.state = CLOSED
                self.closes += 1
                self._reopen_streak = 0
                self._failures.clear()

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self.probe_failures += 1
            self._open(now)
            return
        if self.state == OPEN:
            return
        self._failures.append(now)
        horizon = now - self.policy.window_s
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()
        if len(self._failures) >= self.policy.failure_threshold:
            self._open(now)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "state": self.state,
            "opens": self.opens,
            "closes": self.closes,
            "refused": self.refused,
            "probe_failures": self.probe_failures,
        }


# ----------------------------------------------------------------------
# Facade guards


def _guarded_call(breaker: CircuitBreaker, clock: Callable[[], float],
                  fn: Callable[..., Any], *args, **kwargs) -> Any:
    now = clock()
    breaker.check(now)
    breaker.record_start(now)
    try:
        value = fn(*args, **kwargs)
    except BreakerOpen:
        raise
    except Exception:
        breaker.record_failure(clock())
        raise
    breaker.record_success(clock())
    return value


class GuardedDomain:
    """Domain proxy reporting every facade call into the host breaker."""

    _PASSTHROUGH = frozenset({"name", "uuid"})

    def __init__(self, inner: Any, breaker: CircuitBreaker,
                 clock: Callable[[], float]) -> None:
        self._inner = inner
        self._breaker = breaker
        self._clock = clock

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._inner, attr)
        if attr in self._PASSTHROUGH or not callable(value):
            return value

        def call(*args, **kwargs):
            return _guarded_call(
                self._breaker, self._clock, value, *args, **kwargs
            )

        call.__name__ = attr
        return call

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuardedDomain({self._inner!r})"


class GuardedConnection:
    """Connection proxy: breaker-checked calls, breaker-guarded domains."""

    def __init__(self, inner: Any, breaker: CircuitBreaker,
                 clock: Callable[[], float]) -> None:
        self._inner = inner
        self._breaker = breaker
        self._clock = clock

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    def listAllDomains(self, *args, **kwargs):
        domains = _guarded_call(
            self._breaker, self._clock,
            self._inner.listAllDomains, *args, **kwargs,
        )
        return [
            GuardedDomain(d, self._breaker, self._clock) for d in domains
        ]

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._inner, attr)
        if not callable(value):
            return value

        def call(*args, **kwargs):
            return _guarded_call(
                self._breaker, self._clock, value, *args, **kwargs
            )

        call.__name__ = attr
        return call

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuardedConnection({self._inner!r})"
