"""Resilience subsystem: supervised execution, checkpoints, breakers.

Three layers, each usable on its own:

* :mod:`repro.resilience.supervisor` — a supervised process pool
  (timeouts, heartbeats, retries, respawn, speculation, salvage) that
  is byte-identical to :func:`repro.experiments.parallel.run_many`
  when nothing fails;
* :mod:`repro.resilience.checkpoint` — append-only manifests of
  completed task keys so killed sweeps/corpus runs resume without
  re-executing finished work;
* :mod:`repro.resilience.breaker` / :mod:`repro.resilience.ladder` —
  per-host circuit breaker over the libvirt facade and the control-
  plane degradation ladder (full CUBIC → static 20 % cap → monitor)
  it drives;
* :mod:`repro.resilience.harness_chaos` — chaos drills that prove the
  above by killing, freezing and corrupting the harness itself.

Only the breaker/ladder layer is imported eagerly: the control plane
(:mod:`repro.core.node_manager`) depends on it, while the supervisor
and chaos layers depend back on :mod:`repro.experiments` — importing
them here at module load would close an import cycle, so they resolve
lazily on first attribute access.
"""

import importlib

from repro.resilience.breaker import (
    BreakerOpen,
    BreakerPolicy,
    CircuitBreaker,
    GuardedConnection,
    GuardedDomain,
)
from repro.resilience.ladder import (
    FULL,
    MONITOR,
    STATIC_CAP,
    DegradationLadder,
    ResiliencePolicy,
    ResilienceStats,
)

__all__ = [
    "BreakerOpen",
    "BreakerPolicy",
    "Checkpoint",
    "CircuitBreaker",
    "DegradationLadder",
    "FULL",
    "GuardedConnection",
    "GuardedDomain",
    "HarnessChaosPlan",
    "HarnessChaosResult",
    "MONITOR",
    "ResiliencePolicy",
    "ResilienceStats",
    "STATIC_CAP",
    "SupervisorPolicy",
    "SupervisorStats",
    "WORKER_ENV",
    "default_harness_plan",
    "run_harness_chaos",
    "run_many_supervised",
    "run_many_supervised_report",
]

_LAZY = {
    "Checkpoint": "repro.resilience.checkpoint",
    "SupervisorPolicy": "repro.resilience.supervisor",
    "SupervisorStats": "repro.resilience.supervisor",
    "WORKER_ENV": "repro.resilience.supervisor",
    "run_many_supervised": "repro.resilience.supervisor",
    "run_many_supervised_report": "repro.resilience.supervisor",
    "HarnessChaosPlan": "repro.resilience.harness_chaos",
    "HarnessChaosResult": "repro.resilience.harness_chaos",
    "default_harness_plan": "repro.resilience.harness_chaos",
    "run_harness_chaos": "repro.resilience.harness_chaos",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
