"""Supervised process-pool execution that survives worker failure.

:func:`run_many_supervised_report` is a drop-in variant of
:func:`repro.experiments.parallel.run_many_report` for runs that must
*finish* even when individual workers crash, wedge or straggle.  Where
the plain engine hands tasks to a :class:`ProcessPoolExecutor` and
re-raises the first failure, the supervisor owns its worker processes
directly and layers on:

* **per-task wall-clock timeouts** — a dispatch that exceeds its budget
  gets its worker killed and the task rescheduled;
* **worker heartbeats** — each worker beats a shared monotonic-clock
  slot from a daemon thread; a silent worker (e.g. ``SIGSTOP``-frozen,
  where the pipe stays open so no EOF ever arrives) is detected and
  killed even though its task deadline may be far away;
* **bounded retries with seeded backoff** — failed attempts reschedule
  up to ``max_retries`` times with exponentially-growing, seeded-jitter
  delays;
* **dead-pool respawn** — killed/crashed workers are replaced from a
  bounded respawn budget, so one bad task cannot drain the pool;
* **speculative re-dispatch** — a task running far beyond the median of
  completed tasks gets a duplicate dispatched to an idle worker (the
  harness-level analogue of the paper's LATE straggler baseline);
  whichever attempt finishes first wins;
* **partial-result salvage** — with ``salvage=True`` (default) a task
  that exhausts every attempt resolves to a ``None`` placeholder with a
  ``timed_out``/``failed`` outcome instead of aborting the whole run;
* **serial fallback** — if the pool dies faster than the respawn budget
  can replace it, the remaining tasks run in-process (the last rung:
  no timeout enforcement, but guaranteed progress).

Fault-free supervised execution produces results byte-identical to
:func:`run_many` — same values, same submission-order merge; the
supervisor only *adds* the per-task :class:`TaskOutcome` records and a
:class:`SupervisorStats` block to the report.

Workers are dedicated processes connected by per-worker duplex pipes —
deliberately **not** a shared ``multiprocessing.Queue``: SIGKILLing a
worker that holds a shared queue's read lock would deadlock every other
consumer, which is exactly the failure mode this module exists to
survive.  Killing a pipe's worker only ever breaks that pipe.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import statistics
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.cache import ResultCache, task_key
from repro.experiments.parallel import (
    Progress,
    RunReport,
    TaskOutcome,
    WorkerError,
    _traced,
)

__all__ = [
    "SupervisorPolicy",
    "SupervisorStats",
    "run_many_supervised",
    "run_many_supervised_report",
]

#: Set (to ``"1"``) in the environment of every supervised worker
#: process.  Chaos wrappers key off it so a fault that SIGKILLs "the
#: worker" can never fire in the parent — in particular not when the
#: serial-fallback rung runs remaining tasks in-process.
WORKER_ENV = "REPRO_SUPERVISED_WORKER"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for supervised execution.  Defaults suit minutes-long tasks."""

    #: Wall-clock budget per dispatch; an attempt exceeding it is killed
    #: and counts as a timeout failure.
    task_timeout_s: float = 600.0
    #: How often each worker's daemon thread refreshes its heartbeat slot.
    heartbeat_interval_s: float = 0.2
    #: Heartbeat staleness that gets a worker declared wedged and killed.
    heartbeat_grace_s: float = 5.0
    #: Failed attempts a task may retry (total attempts = retries + 1).
    max_retries: int = 2
    #: First-retry backoff; doubles per subsequent failure of the task.
    backoff_base_s: float = 0.05
    #: Backoff ceiling.
    backoff_max_s: float = 2.0
    #: Seed for the backoff-jitter stream (never touches task results).
    seed: int = 0
    #: Dispatch a duplicate of a straggling task to an idle worker.
    speculate: bool = True
    #: Straggler threshold: elapsed > factor × median completed duration.
    speculation_factor: float = 3.0
    #: Completed-task sample required before the median is trusted.
    speculation_min_done: int = 3
    #: Replacement workers that may be spawned over the run's lifetime.
    max_respawns: int = 4
    #: Resolve exhausted tasks to ``None`` placeholders instead of raising.
    salvage: bool = True
    #: Run remaining tasks in-process if the pool dies beyond respawn.
    serial_fallback: bool = True
    #: Parent poll cadence (pipe readiness + deadline scans).
    poll_interval_s: float = 0.02


@dataclass
class SupervisorStats:
    """What supervision had to do during one run (all zero ⇒ clean run)."""

    retries: int = 0
    timeouts: int = 0
    heartbeat_kills: int = 0
    worker_deaths: int = 0
    respawns: int = 0
    speculative: int = 0
    speculative_wins: int = 0
    salvaged: int = 0
    serial_fallback: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "heartbeat_kills": self.heartbeat_kills,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "speculative": self.speculative,
            "speculative_wins": self.speculative_wins,
            "salvaged": self.salvaged,
            "serial_fallback": self.serial_fallback,
        }


# ----------------------------------------------------------------------
# Worker side


def _worker_main(conn, heartbeats, slot: int, interval: float) -> None:
    """Worker process body: beat the heartbeat, run tasks off the pipe.

    The heartbeat runs on a daemon thread so it keeps beating while the
    runner blocks in C code or sleeps; only process-wide freezes
    (``SIGSTOP``, a GIL-holding spin, death) silence it — which is
    precisely the signal the parent wants.
    """
    os.environ[WORKER_ENV] = "1"
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeats[slot] = time.monotonic()
            stop.wait(interval)

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, index, runner, task = message
            conn.send(("done", index, _traced(runner, task)))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop.set()


# ----------------------------------------------------------------------
# Parent side


class _Task:
    """Supervision state for one submitted task."""

    __slots__ = (
        "index", "dispatches", "failures", "active", "eligible_at",
        "first_dispatch", "speculated", "resolved", "last_error",
        "last_kind",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.dispatches = 0          # attempts sent (incl. speculative)
        self.failures = 0            # attempts that failed
        self.active: Set[int] = set()  # worker ids running it right now
        self.eligible_at = 0.0       # earliest re-dispatch time (backoff)
        self.first_dispatch: Optional[float] = None
        self.speculated = False
        self.resolved = False
        self.last_error: Optional[str] = None
        self.last_kind = "failed"    # "failed" | "timed_out"


class _Worker:
    __slots__ = ("wid", "proc", "conn", "slot", "task")

    def __init__(self, wid: int, proc, conn, slot: int) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.slot = slot
        self.task: Optional[int] = None  # task index, or None when idle


class _Supervisor:
    def __init__(
        self,
        tasks: Sequence[Any],
        runner: Callable[[Any], Any],
        pending: List[int],
        workers: int,
        policy: SupervisorPolicy,
        settle: Callable[[int, Any, TaskOutcome], None],
        stats: SupervisorStats,
    ) -> None:
        self.tasks = tasks
        self.runner = runner
        self.policy = policy
        self.settle = settle
        self.stats = stats
        self.target_workers = workers
        self.states = {i: _Task(i) for i in pending}
        self.unresolved: Set[int] = set(pending)
        self.durations: List[float] = []
        self.rng = random.Random(policy.seed)
        self.fatal: Optional[Tuple[int, BaseException, Optional[str]]] = None

        # fork keeps startup cheap on Linux; heartbeats + pipes are
        # inherited either way.  One heartbeat slot per worker ever
        # spawned, preallocated for the full respawn budget.
        try:
            self.ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self.ctx = multiprocessing.get_context()
        self.slots = workers + policy.max_respawns
        self.heartbeats = self.ctx.Array("d", self.slots, lock=False)
        self.spawned = 0
        self.pool: List[_Worker] = []
        self.by_conn: Dict[Any, _Worker] = {}

    # -- worker lifecycle ------------------------------------------------

    def _spawn(self) -> Optional[_Worker]:
        if self.spawned >= self.slots:
            return None
        slot = self.spawned
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.heartbeats[slot] = time.monotonic()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, self.heartbeats, slot,
                  self.policy.heartbeat_interval_s),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(self.spawned, proc, parent_conn, slot)
        self.spawned += 1
        self.pool.append(worker)
        self.by_conn[parent_conn] = worker
        return worker

    def _remove(self, worker: _Worker) -> None:
        self.pool.remove(worker)
        self.by_conn.pop(worker.conn, None)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _kill(self, worker: _Worker) -> None:
        self._remove(worker)
        try:
            worker.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover
            pass
        worker.proc.join(timeout=5.0)

    def _respawn_budget(self) -> int:
        return self.slots - self.spawned

    # -- attempt resolution ----------------------------------------------

    def _attempt_failed(self, worker: _Worker, kind: str,
                        error: Optional[str]) -> None:
        index = worker.task
        worker.task = None
        if index is None:
            return
        state = self.states[index]
        state.active.discard(worker.wid)
        if state.resolved:
            return  # a speculative sibling already won; nothing to do
        state.failures += 1
        state.last_error = error
        state.last_kind = kind
        if state.active:
            return  # a sibling attempt is still running — let it race
        if state.failures <= self.policy.max_retries:
            backoff = min(
                self.policy.backoff_max_s,
                self.policy.backoff_base_s * (2 ** (state.failures - 1)),
            )
            # Seeded jitter in [0.5, 1.0]× so simultaneous retries from
            # one failure burst don't re-dispatch in lockstep.
            state.eligible_at = (
                time.monotonic() + backoff * (0.5 + 0.5 * self.rng.random())
            )
            self.stats.retries += 1
            return
        self._exhausted(state)

    def _exhausted(self, state: _Task) -> None:
        if self.policy.salvage:
            self.stats.salvaged += 1
            self.settle(state.index, None, TaskOutcome(
                index=state.index, status=state.last_kind,
                attempts=state.dispatches,
                elapsed=(time.monotonic() - state.first_dispatch
                         if state.first_dispatch else 0.0),
                error=state.last_error, speculated=state.speculated,
            ))
            state.resolved = True
            self.unresolved.discard(state.index)
        else:
            cause: BaseException = RuntimeError(
                state.last_error or state.last_kind
            )
            self.fatal = (state.index, cause, state.last_error)

    def _attempt_done(self, worker: _Worker, index: int,
                      envelope: Tuple) -> None:
        state = self.states[index]
        state.active.discard(worker.wid)
        worker.task = None
        if state.resolved:
            if envelope[0] == "ok":
                # The speculative loser also succeeded; result discarded.
                pass
            return
        if envelope[0] == "err":
            _, text, exc = envelope
            worker.task = index  # restore for the shared failure path
            self._attempt_failed(worker, "failed", text)
            return
        if state.speculated and state.active:
            self.stats.speculative_wins += 1
        duration = time.monotonic() - (state.first_dispatch or 0.0)
        self.durations.append(duration)
        status = "retried" if state.failures else "ok"
        self.settle(index, envelope[1], TaskOutcome(
            index=index, status=status, attempts=state.dispatches,
            elapsed=duration, speculated=state.speculated,
        ))
        state.resolved = True
        self.unresolved.discard(index)

    # -- scheduling ------------------------------------------------------

    def _runnable(self, now: float) -> List[int]:
        """Unresolved tasks with no active attempt, past their backoff."""
        return sorted(
            i for i in self.unresolved
            if not self.states[i].active and self.states[i].eligible_at <= now
        )

    def _dispatch(self, worker: _Worker, index: int, now: float,
                  speculative: bool = False) -> None:
        state = self.states[index]
        state.dispatches += 1
        if state.first_dispatch is None:
            state.first_dispatch = now
        if speculative:
            state.speculated = True
            self.stats.speculative += 1
        state.active.add(worker.wid)
        worker.task = index
        try:
            worker.conn.send(("task", index, self.runner, self.tasks[index]))
        except (OSError, BrokenPipeError, ValueError):
            # The worker died between polls; treat as a worker death and
            # let the normal retry path reschedule the task.
            self.stats.worker_deaths += 1
            self._remove(worker)
            worker.proc.join(timeout=5.0)
            self._attempt_failed(worker, "failed", "worker process died")
            return
        self.dispatch_times[worker.wid] = now

    def _fill_idle(self, now: float) -> None:
        idle = [w for w in self.pool if w.task is None]
        if not idle:
            return
        for index in self._runnable(now):
            if not idle:
                return
            self._dispatch(idle.pop(0), index, now)
        if not self.policy.speculate or not idle:
            return
        if len(self.durations) < self.policy.speculation_min_done:
            return
        threshold = (
            self.policy.speculation_factor * statistics.median(self.durations)
        )
        stragglers = sorted(
            i for i in self.unresolved
            if len(self.states[i].active) == 1
            and not self.states[i].speculated
            and self.states[i].first_dispatch is not None
            and now - self.states[i].first_dispatch > threshold
        )
        for index in stragglers:
            if not idle:
                return
            self._dispatch(idle.pop(0), index, now, speculative=True)

    # -- failure detection -----------------------------------------------

    def _reap(self, now: float) -> None:
        for worker in list(self.pool):
            stale = now - self.heartbeats[worker.slot]
            busy = worker.task is not None
            timed_out = (
                busy
                and now - self.dispatch_times.get(worker.wid, now)
                > self.policy.task_timeout_s
            )
            wedged = stale > self.policy.heartbeat_grace_s
            if not timed_out and not wedged:
                continue
            if timed_out:
                self.stats.timeouts += 1
            else:
                self.stats.heartbeat_kills += 1
            self._kill(worker)
            if busy:
                self._attempt_failed(
                    worker, "timed_out",
                    "task deadline exceeded" if timed_out
                    else "worker heartbeat lost",
                )

    def _drain(self, conn) -> None:
        worker = self.by_conn.get(conn)
        if worker is None:
            return
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Worker died (crash or external SIGKILL): pipe broke.
            self.stats.worker_deaths += 1
            self._remove(worker)
            worker.proc.join(timeout=5.0)
            if worker.task is not None:
                self._attempt_failed(worker, "failed", "worker process died")
            return
        if message[0] == "done":
            self._attempt_done(worker, message[1], message[2])

    # -- main loop -------------------------------------------------------

    def run(self) -> None:
        self.dispatch_times: Dict[int, float] = {}
        try:
            for _ in range(min(self.target_workers, len(self.unresolved))):
                self._spawn()
            while self.unresolved and self.fatal is None:
                now = time.monotonic()
                self._reap(now)
                # Keep the pool at strength while the respawn budget and
                # useful work both remain.
                while (
                    len(self.pool) < min(self.target_workers,
                                         len(self.unresolved))
                    and self._respawn_budget() > 0
                ):
                    if self._spawn() is None:
                        break
                    self.stats.respawns += 1
                if not self.pool:
                    break  # pool is dead beyond respawn → fallback rung
                self._fill_idle(now)
                ready = connection_wait(
                    [w.conn for w in self.pool],
                    timeout=self.policy.poll_interval_s,
                )
                for conn in ready:
                    self._drain(conn)
        finally:
            self._shutdown()
        if self.fatal is not None:
            index, cause, text = self.fatal
            raise WorkerError(index, self.tasks[index], cause, text) from cause
        if self.unresolved:
            self._serial_rung()

    def _shutdown(self) -> None:
        for worker in list(self.pool):
            if worker.task is None:
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for worker in list(self.pool):
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            self._remove(worker)

    def _serial_rung(self) -> None:
        """Last rung: finish remaining tasks in-process.

        No timeout enforcement is possible here (there is no worker to
        kill), but progress is guaranteed and chaos kill-wrappers stay
        inert because :data:`WORKER_ENV` is unset in the parent.
        """
        self.stats.serial_fallback = True
        for index in sorted(self.unresolved):
            state = self.states[index]
            while True:
                state.dispatches += 1
                if state.first_dispatch is None:
                    state.first_dispatch = time.monotonic()
                try:
                    value = self.runner(self.tasks[index])
                except Exception:
                    state.failures += 1
                    state.last_error = traceback.format_exc()
                    state.last_kind = "failed"
                    if state.failures <= self.policy.max_retries:
                        self.stats.retries += 1
                        backoff = min(
                            self.policy.backoff_max_s,
                            self.policy.backoff_base_s
                            * (2 ** (state.failures - 1)),
                        )
                        time.sleep(backoff * (0.5 + 0.5 * self.rng.random()))
                        continue
                    self._exhausted(state)
                    if self.fatal is not None:
                        index_, cause, text = self.fatal
                        raise WorkerError(
                            index_, self.tasks[index_], cause, text
                        ) from cause
                    break
                status = "retried" if state.failures else "ok"
                self.settle(index, value, TaskOutcome(
                    index=index, status=status, attempts=state.dispatches,
                    elapsed=time.monotonic() - state.first_dispatch,
                    speculated=state.speculated,
                ))
                state.resolved = True
                self.unresolved.discard(index)
                break


# ----------------------------------------------------------------------
# Entry points


def run_many_supervised_report(
    tasks: Sequence[Any],
    runner: Callable[[Any], Any],
    *,
    workers: int = 0,
    policy: Optional[SupervisorPolicy] = None,
    cache: Optional[ResultCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
    progress: Optional[Callable[[Progress], None]] = None,
    checkpoint=None,
) -> RunReport:
    """Supervised :func:`run_many_report`: survives worker failure.

    Same contract and arguments as the plain engine plus ``policy``;
    the returned :class:`RunReport` additionally carries per-task
    :class:`TaskOutcome` records, a :class:`SupervisorStats` block in
    ``report.supervisor``, and — when salvage engaged — ``None``
    placeholders at the salvaged indices (check ``report.ok``).

    With ``workers=0`` the tasks run in-process with retry/salvage
    semantics but no timeout enforcement (identical to the pool path's
    serial-fallback rung).
    """
    policy = policy or SupervisorPolicy()
    tasks = list(tasks)
    total = len(tasks)
    start = time.perf_counter()
    results: List[Any] = [None] * total
    outcomes: List[Optional[TaskOutcome]] = [None] * total
    keys: List[Optional[str]] = [None] * total
    stats = SupervisorStats()

    cached = 0
    if cache is not None:
        make_key = key_fn or task_key
        for i, task in enumerate(tasks):
            keys[i] = make_key(task)
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = value
                outcomes[i] = TaskOutcome(index=i, status="cached", attempts=0)
                cached += 1
                if checkpoint is not None:
                    checkpoint.record(keys[i])

    pending = [i for i in range(total) if outcomes[i] is None]
    executed = len(pending)
    done = cached

    def emit() -> None:
        if progress is not None:
            progress(Progress(
                done=done, total=total, executed=executed, cached=cached,
                elapsed=time.perf_counter() - start,
            ))

    def settle(i: int, value: Any, outcome: TaskOutcome) -> None:
        nonlocal done
        results[i] = value
        outcomes[i] = outcome
        if outcome.ok:
            if cache is not None:
                cache.put(keys[i], value)
            if checkpoint is not None:
                checkpoint.record(keys[i])
        done += 1
        emit()

    emit()

    if pending:
        if workers > 0:
            supervisor = _Supervisor(
                tasks, runner, pending, workers, policy, settle, stats,
            )
            supervisor.run()
        else:
            # In-process supervision: reuse the serial rung directly so
            # the two code paths cannot drift.
            supervisor = _Supervisor(
                tasks, runner, pending, 0, policy, settle, stats,
            )
            supervisor.dispatch_times = {}
            supervisor._serial_rung()
            stats.serial_fallback = False  # it was the requested mode

    return RunReport(
        results=results, executed=executed, cached=cached,
        elapsed=time.perf_counter() - start,
        outcomes=[
            o if o is not None else TaskOutcome(index=i, status="failed")
            for i, o in enumerate(outcomes)
        ],
        supervisor=stats,
    )


def run_many_supervised(
    tasks: Sequence[Any],
    runner: Callable[[Any], Any],
    **kwargs,
) -> List[Any]:
    """Results-only façade over :func:`run_many_supervised_report`."""
    return run_many_supervised_report(tasks, runner, **kwargs).results
