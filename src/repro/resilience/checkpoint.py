"""Append-only checkpoint manifest for resumable runs.

A :class:`Checkpoint` pairs with a
:class:`~repro.experiments.cache.ResultCache`: the cache holds the
*values* of completed tasks (content-addressed, atomic), while the
manifest holds the *set of completed task keys* for one logical run, so
a killed sweep or corpus run re-invoked with ``--resume`` can prove
which tasks finished without trusting anything half-written.

The manifest is a JSONL file (modeled on the lostbench checkpoint
pattern): a header line with run metadata, then one line per completed
task, flushed as it happens.  Appending a line is the only write — no
rewrite-in-place — so a crash can at worst leave one torn *trailing*
line, which :func:`Checkpoint.load` silently drops.  Keys recorded
before the crash are never lost.

Resume contract: ``completed_keys()`` is a *claim* of completion, not a
value store.  Callers must still route resumed tasks through the result
cache; if the cached value was corrupted or evicted since, the task
simply re-executes (correct, just slower).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Dict, Optional, Set

__all__ = ["Checkpoint"]

#: Bump when the manifest line format changes incompatibly.
MANIFEST_FORMAT = 1


class Checkpoint:
    """Append-only manifest of completed task keys for one run.

    Parameters
    ----------
    path:
        Manifest file location.  Parent directories are created.
    run_id:
        Identity of the *logical* run (e.g. a corpus digest + config
        hash).  On open, an existing manifest with a different
        ``run_id`` is discarded — resuming a sweep with a different
        grid, seed set or code version must start clean rather than
        skip tasks from an unrelated run.
    total:
        Expected task count (informational; recorded in the header).
    """

    def __init__(self, path: os.PathLike | str, *, run_id: str,
                 total: Optional[int] = None) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.total = total
        self._fh: Optional[IO[str]] = None
        self._done: Set[str] = set()

        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.load(self.path)
        if existing is not None and existing.get("run_id") == run_id:
            self._done = set(existing["keys"])
            self._fh = self.path.open("a", encoding="utf-8")
            # A SIGKILL mid-append can leave a torn, newline-less tail;
            # terminate it so the next record starts on its own line
            # (the malformed fragment itself is skipped by load()).
            with self.path.open("rb") as raw:
                raw.seek(0, os.SEEK_END)
                if raw.tell() > 0:
                    raw.seek(-1, os.SEEK_END)
                    if raw.read(1) != b"\n":
                        self._fh.write("\n")
                        self._fh.flush()
        else:
            # Fresh run (or stale manifest from a different run): truncate
            # and write a new header.
            self._fh = self.path.open("w", encoding="utf-8")
            self._write({
                "format": MANIFEST_FORMAT,
                "run_id": run_id,
                "total": total,
            })

    # ------------------------------------------------------------------
    # Writing

    def _write(self, record: Dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush every record: the whole point is surviving SIGKILL, and
        # manifests are tiny relative to the simulations they describe.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str) -> None:
        """Mark ``key`` complete (idempotent; duplicate keys coalesce)."""
        if key in self._done:
            return
        self._done.add(key)
        self._write({"done": key})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading

    @property
    def done(self) -> Set[str]:
        """Keys recorded complete so far (live view of this handle)."""
        return set(self._done)

    def completed(self, key: str) -> bool:
        return key in self._done

    def __len__(self) -> int:
        return len(self._done)

    @staticmethod
    def load(path: os.PathLike | str) -> Optional[Dict]:
        """Parse a manifest: ``{"run_id", "total", "keys"}`` or ``None``.

        Returns ``None`` when the file is missing or its header is
        unreadable.  A torn trailing line (the crash case this format
        exists for) is dropped; torn lines elsewhere are skipped too —
        under-counting completed work is safe, over-counting is not.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        lines = text.splitlines()
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if not isinstance(header, dict) or "run_id" not in header:
            return None
        keys = []
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "done" in record:
                keys.append(record["done"])
        return {
            "run_id": header["run_id"],
            "total": header.get("total"),
            "keys": keys,
        }

    @staticmethod
    def clear(path: os.PathLike | str) -> bool:
        """Delete a manifest (fresh-start escape hatch)."""
        try:
            Path(path).unlink()
            return True
        except (FileNotFoundError, OSError):
            return False
