"""Control-plane degradation ladder: full control → static cap → monitor.

PerfCloud's closed loop assumes libvirt answers.  When a host's control
channel degrades hard enough that the per-call retries and the circuit
breaker keep tripping, continuing to run the CUBIC controller is worse
than useless: its state evolves against actuations that never land.
The paper's own evaluation carries the fallback this ladder steps onto
— a *static* cap at 20 % of the antagonist's observed usage, the
baseline PerfCloud is compared against — and below that, pure
monitoring.

Rungs (one :class:`DegradationLadder` per host):

``FULL``
    Normal operation — detection, identification, CUBIC control.
``STATIC_CAP``
    Entered when the host breaker trips.  Detection and identification
    still run; identified antagonists get a one-shot static cap at
    ``static_cap_fraction`` of observed usage instead of the CUBIC
    trajectory (nothing to mis-evolve when actuations fail), released
    when contention clears.
``MONITOR``
    Entered when the breaker keeps re-opening while already degraded
    (``monitor_after_opens`` further opens).  Sampling continues
    best-effort; no control action is attempted.

Recovery is automatic and stepwise: after the breaker has stayed
``CLOSED`` continuously for ``recovery_hold_s``, the ladder climbs one
rung and restarts the hold, so a host returns MONITOR → STATIC_CAP →
FULL only through sustained health.  The MONITOR transition counts
breaker *opens since entering STATIC_CAP* rather than a consecutive-
reopen streak on purpose: a host whose sampling calls succeed closes
the breaker between actuation bursts, which would reset any streak while
the control channel remains broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience.breaker import CLOSED, BreakerPolicy, CircuitBreaker

__all__ = [
    "FULL",
    "STATIC_CAP",
    "MONITOR",
    "DegradationLadder",
    "ResiliencePolicy",
    "ResilienceStats",
]

FULL = "full"
STATIC_CAP = "static_cap"
MONITOR = "monitor"

#: Rung order, most capable first.
_RUNGS = (FULL, STATIC_CAP, MONITOR)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Enables the breaker + ladder on a node manager."""

    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Static fallback cap as a fraction of the antagonist's observed
    #: usage (0.2 = the paper's static-20 % baseline).
    static_cap_fraction: float = 0.2
    #: Breaker opens *after entering* STATIC_CAP that drop the host to
    #: MONITOR.
    monitor_after_opens: int = 2
    #: Continuous breaker-CLOSED time required to climb one rung.
    recovery_hold_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.static_cap_fraction <= 1.0:
            raise ValueError(
                f"static_cap_fraction must be in (0, 1], got "
                f"{self.static_cap_fraction}"
            )


@dataclass
class ResilienceStats:
    """One host's ladder + breaker posture, for summaries and assertions."""

    host: str
    mode: str
    degradations: int
    recoveries: int
    transitions: List[Tuple[float, str, str]]
    breaker: Dict[str, Any]
    static_caps_active: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "mode": self.mode,
            "degradations": self.degradations,
            "recoveries": self.recoveries,
            "transitions": list(self.transitions),
            "breaker": dict(self.breaker),
            "static_caps_active": self.static_caps_active,
        }


class DegradationLadder:
    """Mode selector for one host, driven by its circuit breaker."""

    def __init__(self, host: str,
                 policy: Optional[ResiliencePolicy] = None) -> None:
        self.host = host
        self.policy = policy or ResiliencePolicy()
        self.breaker = CircuitBreaker(host, self.policy.breaker)
        self.mode = FULL
        self.degradations = 0
        self.recoveries = 0
        #: ``(time, from_mode, to_mode)`` transition log.
        self.transitions: List[Tuple[float, str, str]] = []
        self._closed_since: Optional[float] = None
        self._opens_at_entry = 0

    def update(self, now: float) -> str:
        """Advance the ladder for this control interval; returns the mode.

        Call once per interval *before* acting — the returned mode is
        what the caller should operate in right now.
        """
        if self.breaker.state == CLOSED:
            if self._closed_since is None:
                self._closed_since = now
            if (
                self.mode != FULL
                and now - self._closed_since >= self.policy.recovery_hold_s
            ):
                self._transition(now, _RUNGS[_RUNGS.index(self.mode) - 1])
                # Each rung requires its own full hold of health.
                self._closed_since = now
        else:
            self._closed_since = None
            if self.mode == FULL:
                self._transition(now, STATIC_CAP)
            elif self.mode == STATIC_CAP and (
                self.breaker.opens - self._opens_at_entry
                >= self.policy.monitor_after_opens
            ):
                self._transition(now, MONITOR)
        return self.mode

    def _transition(self, now: float, new_mode: str) -> None:
        old = self.mode
        self.mode = new_mode
        self.transitions.append((now, old, new_mode))
        self._opens_at_entry = self.breaker.opens
        if _RUNGS.index(new_mode) > _RUNGS.index(old):
            self.degradations += 1
        else:
            self.recoveries += 1

    def stats(self, *, static_caps_active: int = 0) -> ResilienceStats:
        return ResilienceStats(
            host=self.host,
            mode=self.mode,
            degradations=self.degradations,
            recoveries=self.recoveries,
            transitions=list(self.transitions),
            breaker=self.breaker.snapshot(),
            static_caps_active=static_caps_active,
        )
