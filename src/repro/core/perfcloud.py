"""PerfCloud system assembly (paper Fig. 8).

"PerfCloud ... is composed of lightweight and decentralized agents that
run on individual physical servers in a cloud datacenter.  Each agent,
called the node manager, is responsible for the performance isolation of
high priority data-intensive applications hosted on a physical server."

:class:`PerfCloud` deploys one :class:`~repro.core.node_manager.NodeManager`
per host against the cloud manager.  There is deliberately **no** central
decision-making: the only global component is the cloud manager's
inventory API, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import PerfCloudConfig
from repro.core.node_manager import NodeManager
from repro.core.shards import ShardedControlPlane
from repro.resilience.ladder import ResiliencePolicy, ResilienceStats
from repro.sim.engine import Simulator

__all__ = ["PerfCloud"]


class PerfCloud:
    """The deployed system: one node-manager agent per physical server."""

    def __init__(
        self,
        sim: Simulator,
        cloud,
        config: Optional[PerfCloudConfig] = None,
        *,
        hosts: Optional[List[str]] = None,
        autostart: bool = True,
        controller_factory=None,
        fault_injector=None,
        resilience: Optional[ResiliencePolicy] = None,
        shard_workers: int = 0,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.cloud = cloud
        self.config = config or PerfCloudConfig()
        self.controller_factory = controller_factory
        #: Optional :class:`~repro.obs.telemetry.Telemetry` shared by
        #: every agent (incident ledger + span recorder); ``None`` keeps
        #: telemetry structurally off — the figure-run default.
        self.telemetry = telemetry
        #: Optional :class:`~repro.faults.injector.FaultInjector` standing
        #: between every agent and its libvirt facade (chaos testing).
        self.fault_injector = fault_injector
        #: Optional :class:`~repro.resilience.ladder.ResiliencePolicy`
        #: giving every agent a circuit breaker + degradation ladder.
        self.resilience = resilience
        # A fault injector draws from per-call fault streams, so the
        # phase-A/phase-C call reordering of a parallel tick would shift
        # its draws relative to the serial schedule; chaos runs therefore
        # force the (byte-identical) serial path.
        if fault_injector is not None:
            shard_workers = 0
        #: Compute-half processes per coordinator tick (0 = in-process).
        self.shard_workers = int(shard_workers)
        #: One coordinator tick steps every agent as an independent shard
        #: (creation order), replacing per-host periodic events.
        self.control_plane = ShardedControlPlane(
            sim, self.config.interval_s, workers=self.shard_workers
        )
        self.node_managers: Dict[str, NodeManager] = {}
        #: Agents decommissioned mid-run (:meth:`remove_host`), kept so
        #: run-level summaries still include everything they counted.
        self.retired: Dict[str, NodeManager] = {}
        for host in hosts if hosts is not None else cloud.hosts():
            self.node_managers[host] = NodeManager(
                sim, host, cloud, self.config, autostart=autostart,
                controller=controller_factory() if controller_factory else None,
                fault_injector=fault_injector,
                scheduler=self.control_plane,
                resilience=resilience,
                shared_plane=self.shard_workers > 0,
                telemetry=telemetry,
            )

    def add_host(self, host_name: str) -> NodeManager:
        """Deploy an agent on a host added after construction.

        Late joiners run standalone (their own periodic task): their
        control grid starts at deployment time, not at the original
        coordinator epoch — exactly the old per-host behavior.
        """
        if host_name in self.node_managers:
            raise ValueError(f"agent already deployed on {host_name!r}")
        nm = NodeManager(
            self.sim, host_name, self.cloud, self.config,
            controller=self.controller_factory() if self.controller_factory else None,
            fault_injector=self.fault_injector,
            resilience=self.resilience,
            telemetry=self.telemetry,
        )
        self.node_managers[host_name] = nm
        return nm

    def remove_host(self, host_name: str) -> NodeManager:
        """Decommission an agent whose host is leaving (or whose node
        manager died) mid-run.

        The agent's control loop stops and its plane is released, but
        the object is retained in :attr:`retired`: every run-level
        aggregate — :meth:`survival_summary`, :meth:`resilience_summary`,
        :meth:`throttle_events` — keeps folding in what it counted while
        alive, instead of silently dropping a dead host's history.
        """
        nm = self.node_managers.pop(host_name, None)
        if nm is None:
            raise KeyError(f"no agent deployed on {host_name!r}")
        nm.stop()
        nm.monitor.plane.close()
        self.retired[host_name] = nm
        return nm

    def _all_agents(self):
        """(host, agent) pairs over live and retired agents, sorted."""
        merged = dict(self.retired)
        merged.update(self.node_managers)
        for host in sorted(merged):
            yield host, merged[host]

    def stop(self) -> None:
        """Halt every agent's control loop."""
        for nm in self.node_managers.values():
            nm.stop()

    def close(self) -> None:
        """Stop agents and release pool + shared-memory resources.

        Idempotent.  Shared planes unlink their ``/dev/shm`` segments
        here; runs that never call it are covered by the segments'
        atexit hooks, and SIGKILLed runs by the stale-segment sweep.
        """
        self.stop()
        self.control_plane.shutdown()
        for nm in self.node_managers.values():
            nm.monitor.plane.close()

    def __enter__(self) -> "PerfCloud":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- query
    def throttle_events(self) -> List[tuple]:
        """All actuation events across hosts (retired included), time-ordered."""
        events = []
        for _, nm in self._all_agents():
            events.extend(nm.actions)
        return sorted(events)

    def survival_summary(self) -> Dict[str, int]:
        """Survival counters summed across every agent, retired included."""
        total: Dict[str, int] = {}
        for _, nm in self._all_agents():
            for key, value in nm.survival_summary().items():
                total[key] = total.get(key, 0) + value
        return total

    def resilience_summary(self) -> Dict[str, ResilienceStats]:
        """Per-host ladder + breaker posture (empty when resilience is off).

        Hosts whose agent was decommissioned mid-run report the posture
        they held at retirement rather than vanishing from the map.
        """
        out: Dict[str, ResilienceStats] = {}
        for host, nm in self._all_agents():
            stats = nm.resilience_summary()
            if stats is not None:
                out[host] = stats
        return out

    def all_agents_alive(self) -> bool:
        """Whether every agent's control loop is still running."""
        return all(nm.running for nm in self.node_managers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCloud(agents={len(self.node_managers)})"
