"""Ad-hoc (bang-bang) resource capping — the §III-C strawman.

"A naive approach may apply ad-hoc resource capping on antagonists,
whenever resource contention is detected.  However, such ad-hoc policies
may lead to oscillatory and unstable system behavior."

:class:`AdHocController` implements exactly that naive policy behind the
same interface as :class:`~repro.core.cubic.CubicController`, so the node
manager can run either and the ablation benchmark can quantify the
oscillation (throttle/release flapping) and the victim/antagonist cost
of forgoing CUBIC's gradual probing.
"""

from __future__ import annotations

from repro.core.config import PerfCloudConfig
from repro.core.cubic import CapState

__all__ = ["AdHocController"]


class AdHocController:
    """Bang-bang capping: clamp hard under contention, release otherwise."""

    def __init__(self, config: PerfCloudConfig, clamp_frac: float = 0.2) -> None:
        if not 0 < clamp_frac < 1:
            raise ValueError("clamp_frac must be in (0, 1)")
        self.config = config
        self.clamp_frac = clamp_frac

    def start(self, observed_usage: float) -> CapState:
        """Begin controlling an antagonist at its observed usage."""
        base = max(float(observed_usage), 1e-9)
        return CapState(base=base, cap=1.0, c_max=1.0, t=0)

    def update(self, state: CapState, contention: bool) -> CapState:
        """Clamp hard on contention; release fully the moment it fades."""
        if contention:
            state.released = False
            state.c_max = 1.0
            state.cap = self.clamp_frac
            state.t = 0
        else:
            # Immediate full release: the instant the signal dips below
            # threshold, the antagonist gets everything back — and the
            # contention returns next interval (the oscillation).
            state.t += 1
            state.cap = 1.0
            state.released = True
        return state
