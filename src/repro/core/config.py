"""PerfCloud tunables, with the paper's published values as defaults.

All constants come from §III: the 5-second monitoring/control interval
(§III-D1), thresholds H_io = 10 and H_cpi = 1 chosen as the peak
deviations observed without contention (§III-C), multiplicative-decrease
factor β = 0.8 and cubic scaling γ = 0.005 (§III-C), and the correlation
threshold 0.8 for antagonist identification (§III-D2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PerfCloudConfig"]


@dataclass(frozen=True)
class PerfCloudConfig:
    """Configuration of one PerfCloud deployment."""

    #: Sampling and control interval, seconds (§III-D1).
    interval_s: float = 5.0
    #: EWMA smoothing factor applied to 5-second samples.
    ewma_alpha: float = 0.7
    #: Threshold on the std of block-iowait ratio across an application's
    #: VMs (ms per op, the unit this reproduction accounts wait time in).
    h_io: float = 10.0
    #: Threshold on the std of CPI across an application's VMs.
    h_cpi: float = 1.0
    #: Multiplicative-decrease factor β: cap -> (1 - β) * cap.
    beta: float = 0.8
    #: Cubic growth scaling γ.
    gamma: float = 0.005
    #: Pearson correlation threshold for antagonist identification.
    corr_threshold: float = 0.8
    #: Samples of history used in the online correlation (Fig. 5c shows 3
    #: already works; a slightly longer tail adds robustness).
    corr_window: int = 8
    #: Minimum victim samples before identification is attempted.
    corr_min_samples: int = 4
    #: Floor on resource caps, as a fraction of the initial cap — the
    #: controller never strangles a VM to zero.
    cap_floor_frac: float = 0.05
    #: How long an identified antagonist stays throttle-eligible after its
    #: correlation last exceeded the threshold, seconds.
    antagonist_ttl_s: float = 120.0
    #: Retry attempts after a failed actuation call (each retried on an
    #: exponential backoff starting at ``actuation_backoff_s``); the
    #: reconciliation pass re-asserts anything still unapplied next interval.
    actuation_retries: int = 3
    #: First-retry backoff after a failed actuation, seconds.
    actuation_backoff_s: float = 1.0
    #: Drop monitor-history samples older than this, seconds; None keeps
    #: every sample up to the series capacity (the figure runners read
    #: full-run series, so the default stays unbounded).
    history_retention_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.h_io <= 0 or self.h_cpi <= 0:
            raise ValueError("thresholds must be positive")
        if not 0 < self.beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if not 0 < self.gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        if not 0 < self.corr_threshold <= 1:
            raise ValueError("corr_threshold must be in (0, 1]")
        if self.corr_window < 2 or self.corr_min_samples < 2:
            raise ValueError("correlation windows must be >= 2")
        if not 0 <= self.cap_floor_frac < 1:
            raise ValueError("cap_floor_frac must be in [0, 1)")
        if self.antagonist_ttl_s <= 0:
            raise ValueError("antagonist_ttl_s must be positive")
        if self.actuation_retries < 0:
            raise ValueError("actuation_retries must be non-negative")
        if self.actuation_backoff_s <= 0:
            raise ValueError("actuation_backoff_s must be positive")
        if self.history_retention_s is not None and self.history_retention_s <= 0:
            raise ValueError("history_retention_s must be positive or None")
