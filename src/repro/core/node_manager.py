"""Node manager: Algorithm 1 — the per-host PerfCloud agent.

Every control interval the node manager:

1. fetches the host's VM inventory from the cloud manager (priorities and
   application grouping — so it survives arrivals, deletions and
   migrations);
2. samples system-level metrics for every VM through libvirt;
3. computes the iowait-ratio and CPI deviations across each high-priority
   application's VMs and compares them to the thresholds;
4. identifies antagonists among the low-priority VMs by online Pearson
   correlation (I/O throughput against the I/O signal, LLC miss rate
   against the CPI signal);
5. runs the CUBIC controller per (antagonist, resource) and actuates the
   resulting caps through libvirt — ``setBlockIoTune`` for disk,
   ``setSchedulerParameters``/``vcpu_quota`` for CPU.

If several high-priority applications share the host, it reports the
conflict to the cloud manager (the paper's migration hook, §IV-D2).

The agent is hardened for long-running operation against a degraded
libvirt: a failing actuation is retried on a bounded exponential backoff
without losing controller state or skipping other antagonists, every
interval ends with a desired-vs-applied reconciliation pass that
re-asserts caps which drifted or never landed (e.g. after a guest
reboot wiped them), cap state for departed VMs is retired, and no
``LibvirtError`` ever kills the periodic control task.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import PerfCloudConfig
from repro.core.cubic import CapState, CubicController
from repro.core.detector import InterferenceDetector
from repro.core.identification import AntagonistIdentifier
from repro.core.monitor import PLANE_METRICS, PerformanceMonitor, VmSample
from repro.core.verdict import ComputeTicket, ControlVerdict, compute_verdict
from repro.metrics.timeseries import TimeSeries
from repro.resilience.breaker import GuardedConnection
from repro.resilience.ladder import (
    FULL,
    MONITOR,
    STATIC_CAP,
    DegradationLadder,
    ResiliencePolicy,
    ResilienceStats,
)
from repro.sim.engine import Simulator
from repro.virt.libvirt_api import VCPU_PERIOD_US, Connection, Domain, LibvirtError

__all__ = ["ControlPlaneStats", "IntervalContext", "NodeManager"]


@dataclass
class ControlPlaneStats:
    """Per-agent survival counters (all zero on a healthy facade)."""

    #: Control intervals that ran to completion.
    intervals_completed: int = 0
    #: Control intervals aborted by an unhandled facade error.
    intervals_aborted: int = 0
    #: Actuation calls that raised (each then retried on backoff).
    actuation_errors: int = 0
    #: Retry attempts executed after a failed actuation.
    actuations_retried: int = 0
    #: Actuations abandoned after exhausting every retry.
    actuations_failed: int = 0
    #: Caps re-asserted by the reconciliation pass.
    caps_reconciled: int = 0
    #: Controller states retired because their VM left the host.
    caps_retired: int = 0
    #: Static fallback caps asserted while degraded (ladder only).
    static_caps_applied: int = 0
    #: Static fallback caps cleared (contention gone or mode recovered).
    static_caps_released: int = 0
    #: Intervals spent on the monitoring-only rung.
    monitor_intervals: int = 0
    #: CUBIC controller states abandoned on degradation.
    cubic_states_dropped: int = 0


@dataclass
class IntervalContext:
    """Parent-side carry between the begin and complete interval halves."""

    now: float
    mode: str
    samples: Dict[str, VmSample]
    ticket: ComputeTicket


class NodeManager:
    """One decentralized PerfCloud agent, bound to one physical server."""

    def __init__(
        self,
        sim: Simulator,
        host_name: str,
        cloud,
        config: Optional[PerfCloudConfig] = None,
        *,
        autostart: bool = True,
        controller=None,
        fault_injector=None,
        scheduler=None,
        resilience: Optional[ResiliencePolicy] = None,
        shared_plane: bool = False,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.host_name = host_name
        self.cloud = cloud
        self.config = config or PerfCloudConfig()
        self.conn: Connection = cloud.connection(host_name)
        if fault_injector is not None:
            self.conn = fault_injector.wrap(self.conn)
        #: Optional degradation ladder; its circuit breaker wraps the
        #: facade *outside* the fault injector — the injector models the
        #: world misbehaving, the breaker is this agent's reaction to it.
        self.resilience_policy = resilience
        self.ladder: Optional[DegradationLadder] = None
        if resilience is not None:
            self.ladder = DegradationLadder(host_name, resilience)
            self.conn = GuardedConnection(
                self.conn, self.ladder.breaker, lambda: self.sim.now
            )
        self._mode = FULL
        #: Static fallback caps by (vm_name, resource): absolute cap, or
        #: ``None`` once marked for release (cleared by reconciliation).
        self.static_caps: Dict[Tuple[str, str], Optional[float]] = {}
        plane = None
        if shared_plane:
            # Shared-memory rings so pool workers read columns zero-copy.
            from repro.metrics.plane import SharedMetricPlane

            plane = SharedMetricPlane(PLANE_METRICS, name_tag=host_name)
        self.monitor = PerformanceMonitor(self.conn, self.config, plane=plane)
        self.detector = InterferenceDetector(self.config)
        self.identifier = AntagonistIdentifier(self.config)
        #: Cap-control law; Eq. 1 CUBIC unless an alternative is injected
        #: (the ad-hoc ablation of §III-C uses AdHocController here).
        self.controller = controller or CubicController(self.config)
        #: Controller state per (vm_name, resource) with resource in
        #: {"io", "cpu"}.
        self.cap_states: Dict[Tuple[str, str], CapState] = {}
        #: Applied-cap history for Fig. 10: (vm, resource) -> TimeSeries of
        #: normalized caps (1.0 = pre-throttle usage; NaN-free).
        self.cap_history: Dict[Tuple[str, str], TimeSeries] = {}
        #: (time, vm, resource, normalized_cap) actuation events.
        self.actions: List[tuple] = []
        self.stats = ControlPlaneStats()
        #: Optional :class:`~repro.obs.telemetry.Telemetry` — incident
        #: ledger + span recorder.  Every hook below is guarded on it,
        #: so ``None`` (the default) leaves the hot path untouched.
        self.telemetry = telemetry
        #: Optional :class:`~repro.core.shards.ShardedControlPlane`; when
        #: set, this agent is stepped as a shard of the coordinator task
        #: instead of owning its own periodic event.
        self._scheduler = scheduler
        self._task = None
        if autostart:
            self.start()

    # ----------------------------------------------------------------- loop
    def start(self) -> None:
        """Begin (or resume) the periodic control loop."""
        if self._scheduler is not None:
            self._scheduler.attach(self)
            return
        if self._task is None or self._task.stopped:
            self._task = self.sim.every(
                self.config.interval_s,
                self.control_interval,
                name=f"node-manager-{self.host_name}",
            )

    def stop(self) -> None:
        """Halt the control loop (existing caps stay as they are)."""
        if self._scheduler is not None:
            self._scheduler.detach(self)
            return
        if self._task is not None:
            self._task.stop()

    @property
    def running(self) -> bool:
        """Whether this agent's control loop is currently scheduled."""
        if self._scheduler is not None:
            return self._scheduler.attached(self)
        return self._task is not None and not self._task.stopped

    def control_interval(self) -> None:
        """One pass of Algorithm 1; a degraded facade never kills the task.

        The serial composition of the two interval halves: the same
        ``begin → compute → complete`` sequence the parallel coordinator
        runs, with the compute half executed in-process (state already
        mutated, so the verdict is applied without absorption).
        """
        try:
            ctx = self._begin()
            if ctx is not None:
                verdict = self._compute_ctx(ctx)
                self._complete(ctx, verdict, absorb=False)
        except LibvirtError:
            # Every libvirt call inside the interval is individually
            # guarded; this is the last line of defence keeping the
            # periodic task alive under an unexpectedly failing facade.
            self.stats.intervals_aborted += 1
            return
        self.stats.intervals_completed += 1

    # -------------------------------------------------------- interval halves
    def begin_interval(self, epoch: int = 0) -> Optional[IntervalContext]:
        """Phase A of a coordinated tick: sample + inventory snapshot.

        Returns ``None`` when the interval needs no compute half (the
        monitoring rung, or no high-priority application) — the interval
        is then already fully accounted.  Otherwise the returned context
        carries the :class:`~repro.core.verdict.ComputeTicket` to hand a
        pool worker and everything :meth:`complete_interval` needs.
        """
        try:
            ctx = self._begin(epoch)
        except LibvirtError:
            self.stats.intervals_aborted += 1
            return None
        if ctx is None:
            self.stats.intervals_completed += 1
        return ctx

    def complete_interval(
        self, ctx: IntervalContext, verdict: ControlVerdict, *,
        absorb: bool = True,
    ) -> None:
        """Phase C: apply a verdict (actuation + accounting).

        ``absorb=True`` replays the verdict's deviations and scores into
        this agent's detector/identifier (the verdict was computed on a
        worker's replica); ``absorb=False`` means the compute ran on this
        very agent and the state is already mutated.
        """
        try:
            self._complete(ctx, verdict, absorb=absorb)
        except LibvirtError:
            self.stats.intervals_aborted += 1
            return
        self.stats.intervals_completed += 1

    def compute_and_complete(self, ctx: IntervalContext) -> None:
        """Serial fallback for one ticket: compute in-process, then apply."""
        verdict = self._compute_ctx(ctx)
        self.complete_interval(ctx, verdict, absorb=False)

    def _begin(self, epoch: int = 0) -> Optional[IntervalContext]:
        now = self.sim.now
        mode = self._update_mode(now)
        instances = self.cloud.instances_on_host(self.host_name)
        high = [i for i in instances if i.is_high_priority and i.app_id]
        low = [i for i in instances if not i.is_high_priority]

        tel = self.telemetry
        spans = tel.spans if tel is not None else None
        if spans is not None:
            t0 = time.perf_counter()
            samples = self.monitor.sample(now)
            spans.record("monitor.sample", self.host_name, now,
                         time.perf_counter() - t0)
        else:
            samples = self.monitor.sample(now)
        self._retire_departed({i.name for i in instances})
        if mode == MONITOR:
            # Lowest rung: keep observing (best-effort — the breaker may
            # refuse even sampling), take no control action at all.
            self.stats.monitor_intervals += 1
            return None

        app_members: Dict[str, List[str]] = {}
        for info in high:
            app_members.setdefault(info.app_id, []).append(info.name)
        if len(app_members) > 1:
            self.cloud.report_conflict(
                self.host_name, sorted(app_members), now
            )
        if not app_members:
            self._finish_interval(now, mode)
            return None

        ticket = ComputeTicket(
            host=self.host_name,
            epoch=epoch,
            now=now,
            app_members=tuple(
                (app, tuple(members)) for app, members in app_members.items()
            ),
            suspects=tuple(
                i.name for i in low if i.name in self.monitor.history
            ),
            do_identify=bool(low),
            rows=self.monitor.plane.row_mapping(),
            trace=spans is not None,
        )
        return IntervalContext(now=now, mode=mode, samples=samples, ticket=ticket)

    # -------------------------------------------------- coordinator helpers
    def quiet_interval(self, ctx: IntervalContext) -> bool:
        """Whether this interval's compute may skip the pool round-trip.

        Quiet means no app's latest deviation crossed a threshold and no
        cap (CUBIC or static) is in force — identification and control
        will be cheap, so the coordinator runs them parent-side instead
        of paying the ticket round-trip (a routing decision only; the
        serial-fallback path computes identical results).
        """
        return (
            not self.cap_states
            and not self.static_caps
            and not self.detector.in_deviation(
                app for app, _ in ctx.ticket.app_members
            )
        )

    def victim_tails(self, ticket: ComputeTicket) -> tuple:
        """Victim-signal tails for a pool-bound ticket.

        Long enough (``max(corr_window, corr_min_samples)``) that a
        worker whose replica missed any number of ticket-free ticks can
        reconstruct everything the compute half reads: ``identify``
        consumes only ``victim.tail(corr_window)``, and the
        enough-history check saturates at ``corr_min_samples`` on both
        sides once that many entries exist.
        """
        length = max(self.config.corr_window, self.config.corr_min_samples)
        tails = []
        for app_id, _ in ticket.app_members:
            sig = self.detector.signals.get(app_id)
            if sig is None:
                continue
            entry = [app_id]
            for kind in ("io", "cpi"):
                times, values = sig[kind].tail(length)
                entry.append((tuple(float(t) for t in times),
                              tuple(float(v) for v in values)))
            tails.append(tuple(entry))
        return tuple(tails)

    def _compute_ctx(self, ctx: IntervalContext) -> ControlVerdict:
        """Run the compute half on this agent's own (live) state."""
        history = self.monitor.history
        return compute_verdict(
            self.detector,
            self.identifier,
            self.monitor.plane,
            ctx.ticket,
            ctx.samples,
            lambda name, metric: history[name][metric],
            self.config,
        )

    def _complete(
        self, ctx: IntervalContext, verdict: ControlVerdict, *, absorb: bool
    ) -> None:
        now, mode = ctx.now, ctx.mode
        tel = self.telemetry
        spans = tel.spans if tel is not None else None
        if spans is not None:
            # Compute-half spans measured by whichever side ran
            # compute_verdict (a pool worker or this very agent) and
            # carried home on the verdict.
            for kind, dur in verdict.spans:
                spans.record(kind, self.host_name, now, dur)
        if absorb:
            for app_id, iowait_std, cpi_std in verdict.detections:
                self.detector.record(now, app_id, iowait_std, cpi_std)
        if not verdict.do_identify:
            # Nothing to identify or throttle; detection history still
            # accumulates (the paper's "running alone" baselines).
            self._finish_interval(now, mode)
            if tel is not None and tel.ledger is not None:
                tel.ledger.observe(self, now, verdict, ())
            return

        io_contention = any(
            s > self.config.h_io for _, s, _ in verdict.detections
        )
        cpu_contention = any(
            s > self.config.h_cpi for _, _, s in verdict.detections
        )

        t0 = time.perf_counter() if spans is not None else 0.0
        io_antagonists: Set[str] = set()
        cpu_antagonists: Set[str] = set()
        #: (identification, judged antagonist set) pairs — on the absorb
        #: path the parent re-judges from the verdict's correlations (the
        #: worker-side sets are ignored), so this list holds the
        #: authoritative outcome on both paths; the incident ledger is
        #: built from it.
        judged: List[tuple] = []
        for ident in verdict.identifications:
            if absorb:
                ants = (
                    self.identifier.judge(ident.resource, ident.correlations, now)
                    if ident.ran else set()
                )
            else:
                ants = ident.antagonists
            judged.append((ident, ants))
            if ident.resource == "io":
                io_antagonists |= ants
            else:
                cpu_antagonists |= ants
        if spans is not None:
            t1 = time.perf_counter()
            spans.record("identifier.judge", self.host_name, now, t1 - t0)
        else:
            t1 = 0.0

        samples = ctx.samples
        if mode == STATIC_CAP:
            # Degraded rung: detection and identification still run, but
            # antagonists get the paper's static fallback cap instead of
            # a CUBIC trajectory (nothing to mis-evolve while actuations
            # are unreliable).
            self._static_control("io", io_antagonists, io_contention,
                                 samples, now)
            self._static_control("cpu", cpu_antagonists, cpu_contention,
                                 samples, now)
        else:
            self._control("io", io_antagonists, io_contention, samples, now)
            self._control("cpu", cpu_antagonists, cpu_contention, samples, now)
        self._finish_interval(now, mode)
        if spans is not None:
            spans.record("actuation", self.host_name, now,
                         time.perf_counter() - t1)
        if tel is not None and tel.ledger is not None:
            tel.ledger.observe(self, now, verdict, judged)

    def _finish_interval(self, now: float, mode: str = FULL) -> None:
        if mode == STATIC_CAP:
            self._reconcile_static(now)
            return
        self._reconcile_caps(now)
        if self.static_caps:
            # Leftovers from a degraded episode: clear them now that the
            # channel is healthy again.
            for key in self.static_caps:
                self.static_caps[key] = None
            self._reconcile_static(now)
        self._record_cap_history(now)

    def survival_summary(self) -> Dict[str, int]:
        """Merged control-plane and monitor survival counters."""
        m = self.monitor.stats
        return {
            "intervals_completed": self.stats.intervals_completed,
            "intervals_aborted": self.stats.intervals_aborted,
            "list_failures": m.list_failures,
            "samples_dropped": m.samples_dropped,
            "counter_resets": m.counter_resets,
            "histories_purged": m.histories_purged,
            "samples_pruned": m.samples_pruned,
            "actuation_errors": self.stats.actuation_errors,
            "actuations_retried": self.stats.actuations_retried,
            "actuations_failed": self.stats.actuations_failed,
            "caps_reconciled": self.stats.caps_reconciled,
            "caps_retired": self.stats.caps_retired,
        }

    def resilience_summary(self) -> Optional[ResilienceStats]:
        """Ladder + breaker posture, or ``None`` when resilience is off."""
        if self.ladder is None:
            return None
        active = sum(1 for cap in self.static_caps.values() if cap is not None)
        return self.ladder.stats(static_caps_active=active)

    # --------------------------------------------------------------- ladder
    def _update_mode(self, now: float) -> str:
        if self.ladder is None:
            return FULL
        mode = self.ladder.update(now)
        if mode != self._mode:
            self._on_mode_change(self._mode, mode, now)
            self._mode = mode
        return mode

    def _on_mode_change(self, old: str, new: str, now: float) -> None:
        if old == FULL:
            # Degrading: abandon CUBIC state (its trajectory is
            # meaningless against unreliable actuation) but inherit the
            # currently-applied caps as the static posture, so already-
            # throttled antagonists stay throttled.
            for (vm, resource), state in self.cap_states.items():
                if not state.released:
                    self.static_caps.setdefault(
                        (vm, resource), state.absolute_cap
                    )
            self.stats.cubic_states_dropped += len(self.cap_states)
            self.cap_states.clear()
        if new == FULL:
            # Recovered: mark every static cap for release; the healthy
            # channel clears them in this interval's reconciliation and
            # CUBIC restarts fresh episodes where contention persists.
            for key in self.static_caps:
                self.static_caps[key] = None

    def _static_control(
        self,
        resource: str,
        antagonists: Set[str],
        contention: bool,
        samples: Dict[str, VmSample],
        now: float,
    ) -> None:
        """Static fallback: one-shot cap at ``static_cap_fraction`` of usage."""
        fraction = self.resilience_policy.static_cap_fraction
        if not contention:
            for key, cap in self.static_caps.items():
                if key[1] == resource and cap is not None:
                    self.static_caps[key] = None  # release via reconcile
            return
        for vm_name in sorted(antagonists):
            key = (vm_name, resource)
            if self.static_caps.get(key) is not None:
                continue
            usage = self._observed_usage(vm_name, resource, samples)
            if usage is None or usage <= 0:
                continue
            cap = usage * fraction
            self.static_caps[key] = cap
            self.stats.static_caps_applied += 1
            try:
                dom = self.conn.lookupByName(vm_name)
                self._apply_cap(dom, resource, cap)
            except LibvirtError:
                continue  # reconciliation retries next interval
            self.actions.append((now, vm_name, resource, fraction))

    def _reconcile_static(self, now: float) -> None:
        """Converge applied caps onto the static posture, best-effort.

        Entries marked ``None`` are pending release and are dropped once
        the clear actually lands — never before, so a cap can't be
        orphaned on a VM by a failed release.
        """
        for key, cap in list(self.static_caps.items()):
            vm_name, resource = key
            try:
                dom = self.conn.lookupByName(vm_name)
                if cap is None:
                    self._apply_cap(dom, resource, None)
                    del self.static_caps[key]
                    self.stats.static_caps_released += 1
                    self.actions.append((now, vm_name, resource, None))
                elif not self._cap_matches(dom, resource, cap):
                    self._apply_cap(dom, resource, cap)
                    self.stats.caps_reconciled += 1
            except LibvirtError:
                continue  # channel still degraded; keep the entry

    # ------------------------------------------------------------- internals
    def _control(
        self,
        resource: str,
        antagonists: Set[str],
        contention: bool,
        samples: Dict[str, VmSample],
        now: float,
    ) -> None:
        # Every existing cap keeps evolving (cubic recovery must continue
        # even after a VM ages out of the antagonist set), while *new* caps
        # are only created for identified antagonists at a moment of actual
        # contention — Eq. 1 starts from a multiplicative decrease of the
        # observed usage.
        tracked = {vm for (vm, r) in self.cap_states if r == resource}
        for vm_name in sorted(antagonists | tracked):
            key = (vm_name, resource)
            state = self.cap_states.get(key)
            is_antagonist = vm_name in antagonists
            if state is None:
                if not (contention and is_antagonist):
                    continue
                usage = self._observed_usage(vm_name, resource, samples)
                if usage is None or usage <= 0:
                    continue
                state = self.controller.start(usage)
                self.cap_states[key] = state
            was_released = state.released
            self.controller.update(state, contention and is_antagonist)
            self._actuate(vm_name, resource, state, was_released, now)
            if state.released and not is_antagonist:
                # Fully recovered and no longer implicated: retire the
                # controller state (a fresh episode restarts from the
                # then-observed usage).
                del self.cap_states[key]

    def _observed_usage(
        self, vm_name: str, resource: str, samples: Dict[str, VmSample]
    ) -> Optional[float]:
        s = samples.get(vm_name)
        if s is None:
            return None
        if resource == "io":
            return s.io_bytes_ps
        return s.cpu_usage_cores

    def _actuate(
        self,
        vm_name: str,
        resource: str,
        state: CapState,
        was_released: bool,
        now: float,
    ) -> None:
        try:
            dom = self.conn.lookupByName(vm_name)
        except LibvirtError:
            return  # VM left the host between sampling and actuation
        if state.released:
            if not was_released:
                if self._try_apply(dom, vm_name, resource, None):
                    self.actions.append((now, vm_name, resource, None))
            return
        if self._try_apply(dom, vm_name, resource, state.absolute_cap):
            self.actions.append((now, vm_name, resource, state.cap))

    def _try_apply(
        self, dom: Domain, vm_name: str, resource: str, cap: Optional[float]
    ) -> bool:
        """Apply ``cap`` (None clears), scheduling backoff retries on failure.

        Returns whether the cap landed now.  A failure never propagates:
        the controller state is untouched and the remaining antagonists
        of this interval still get actuated; retries re-apply whatever
        the *current* desired cap is when they fire, and the next
        interval's reconciliation pass covers anything still drifted.
        """
        try:
            self._apply_cap(dom, resource, cap)
            return True
        except LibvirtError:
            self.stats.actuation_errors += 1
            self._schedule_retry(vm_name, resource, attempt=1)
            return False

    def _apply_cap(self, dom: Domain, resource: str, cap: Optional[float]) -> None:
        if resource == "io":
            dom.setBlockIoTune("vda", {"total_bytes_sec": cap or 0})
        elif cap is None:
            dom.setSchedulerParameters({"vcpu_quota": -1})
        else:
            dom.setSchedulerParameters(
                {"vcpu_quota": self._quota_for(dom, cap),
                 "vcpu_period": VCPU_PERIOD_US}
            )

    def _quota_for(self, dom: Domain, cap: float) -> int:
        cores = max(cap, dom.vcpus() * 0.01)
        return max(1000, int(round(cores / dom.vcpus() * VCPU_PERIOD_US)))

    def _schedule_retry(self, vm_name: str, resource: str, attempt: int) -> None:
        if attempt > self.config.actuation_retries:
            self.stats.actuations_failed += 1
            return
        delay = self.config.actuation_backoff_s * (2 ** (attempt - 1))
        self.sim.schedule(
            delay,
            lambda: self._retry_actuation(vm_name, resource, attempt),
            name=f"actuate-retry-{vm_name}-{resource}",
        )

    def _retry_actuation(self, vm_name: str, resource: str, attempt: int) -> None:
        state = self.cap_states.get((vm_name, resource))
        desired = None if state is None or state.released else state.absolute_cap
        self.stats.actuations_retried += 1
        try:
            dom = self.conn.lookupByName(vm_name)
            self._apply_cap(dom, resource, desired)
        except LibvirtError:
            self._schedule_retry(vm_name, resource, attempt + 1)
            return
        self.actions.append(
            (self.sim.now, vm_name, resource,
             state.cap if desired is not None else None)
        )

    def _reconcile_caps(self, now: float) -> None:
        """Re-assert every desired cap whose applied value drifted.

        Actuations can fail past their retries, land late, or be wiped
        wholesale by a guest reboot; comparing the controller's desired
        cap against what libvirt reports and re-applying the difference
        makes the applied state converge regardless of which write was
        lost.  On a healthy facade every comparison matches and this
        pass is a read-only no-op.
        """
        for (vm_name, resource), state in self.cap_states.items():
            desired = None if state.released else state.absolute_cap
            try:
                dom = self.conn.lookupByName(vm_name)
                if self._cap_matches(dom, resource, desired):
                    continue
                self._apply_cap(dom, resource, desired)
            except LibvirtError:
                # Unreadable or unwritable right now; next interval retries.
                continue
            self.stats.caps_reconciled += 1
            self.actions.append(
                (now, vm_name, resource,
                 state.cap if desired is not None else None)
            )

    def _cap_matches(
        self, dom: Domain, resource: str, desired: Optional[float]
    ) -> bool:
        if resource == "io":
            applied = dom.blockIoTune("vda")["total_bytes_sec"]
            if desired is None:
                return applied == 0.0
            return abs(applied - desired) <= 1e-9 * max(1.0, abs(desired))
        quota = dom.schedulerParameters()["vcpu_quota"]
        if desired is None:
            return quota == -1
        return quota == self._quota_for(dom, desired)

    def _retire_departed(self, present: Set[str]) -> None:
        """Drop controller state for VMs no longer on this host."""
        for key in [k for k in self.cap_states if k[0] not in present]:
            del self.cap_states[key]
            self.stats.caps_retired += 1
        for key in [k for k in self.static_caps if k[0] not in present]:
            del self.static_caps[key]
            self.stats.caps_retired += 1

    def _record_cap_history(self, now: float) -> None:
        for key, state in self.cap_states.items():
            ts = self.cap_history.setdefault(
                key, TimeSeries(name=f"{key[0]}.{key[1]}.cap")
            )
            ts.append(now, state.cap if not state.released else float("nan"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeManager(host={self.host_name!r}, caps={len(self.cap_states)})"
