"""Node manager: Algorithm 1 — the per-host PerfCloud agent.

Every control interval the node manager:

1. fetches the host's VM inventory from the cloud manager (priorities and
   application grouping — so it survives arrivals, deletions and
   migrations);
2. samples system-level metrics for every VM through libvirt;
3. computes the iowait-ratio and CPI deviations across each high-priority
   application's VMs and compares them to the thresholds;
4. identifies antagonists among the low-priority VMs by online Pearson
   correlation (I/O throughput against the I/O signal, LLC miss rate
   against the CPI signal);
5. runs the CUBIC controller per (antagonist, resource) and actuates the
   resulting caps through libvirt — ``setBlockIoTune`` for disk,
   ``setSchedulerParameters``/``vcpu_quota`` for CPU.

If several high-priority applications share the host, it reports the
conflict to the cloud manager (the paper's migration hook, §IV-D2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import PerfCloudConfig
from repro.core.cubic import CapState, CubicController
from repro.core.detector import InterferenceDetector
from repro.core.identification import AntagonistIdentifier
from repro.core.monitor import PerformanceMonitor, VmSample
from repro.metrics.timeseries import TimeSeries
from repro.sim.engine import Simulator
from repro.virt.libvirt_api import VCPU_PERIOD_US, Connection, Domain, LibvirtError

__all__ = ["NodeManager"]


class NodeManager:
    """One decentralized PerfCloud agent, bound to one physical server."""

    def __init__(
        self,
        sim: Simulator,
        host_name: str,
        cloud,
        config: Optional[PerfCloudConfig] = None,
        *,
        autostart: bool = True,
        controller=None,
    ) -> None:
        self.sim = sim
        self.host_name = host_name
        self.cloud = cloud
        self.config = config or PerfCloudConfig()
        self.conn: Connection = cloud.connection(host_name)
        self.monitor = PerformanceMonitor(self.conn, self.config)
        self.detector = InterferenceDetector(self.config)
        self.identifier = AntagonistIdentifier(self.config)
        #: Cap-control law; Eq. 1 CUBIC unless an alternative is injected
        #: (the ad-hoc ablation of §III-C uses AdHocController here).
        self.controller = controller or CubicController(self.config)
        #: Controller state per (vm_name, resource) with resource in
        #: {"io", "cpu"}.
        self.cap_states: Dict[Tuple[str, str], CapState] = {}
        #: Applied-cap history for Fig. 10: (vm, resource) -> TimeSeries of
        #: normalized caps (1.0 = pre-throttle usage; NaN-free).
        self.cap_history: Dict[Tuple[str, str], TimeSeries] = {}
        #: (time, vm, resource, normalized_cap) actuation events.
        self.actions: List[tuple] = []
        self._task = None
        if autostart:
            self.start()

    # ----------------------------------------------------------------- loop
    def start(self) -> None:
        """Begin (or resume) the periodic control loop."""
        if self._task is None or self._task.stopped:
            self._task = self.sim.every(
                self.config.interval_s,
                self.control_interval,
                name=f"node-manager-{self.host_name}",
            )

    def stop(self) -> None:
        """Halt the control loop (existing caps stay as they are)."""
        if self._task is not None:
            self._task.stop()

    def control_interval(self) -> None:
        """One pass of Algorithm 1."""
        now = self.sim.now
        instances = self.cloud.instances_on_host(self.host_name)
        high = [i for i in instances if i.is_high_priority and i.app_id]
        low = [i for i in instances if not i.is_high_priority]

        samples = self.monitor.sample(now)

        app_members: Dict[str, List[str]] = {}
        for info in high:
            app_members.setdefault(info.app_id, []).append(info.name)
        if len(app_members) > 1:
            self.cloud.report_conflict(
                self.host_name, sorted(app_members), now
            )
        if not app_members:
            self._record_cap_history(now)
            return

        detections = self.detector.evaluate(now, samples, app_members)
        if not low:
            # Nothing to identify or throttle; detection history still
            # accumulates (the paper's "running alone" baselines).
            self._record_cap_history(now)
            return

        io_contention = any(d.io_contention for d in detections.values())
        cpu_contention = any(d.cpu_contention for d in detections.values())

        io_antagonists: Set[str] = set()
        cpu_antagonists: Set[str] = set()
        for app_id in app_members:
            io_res = self.identifier.identify(
                "io",
                self.detector.signal(app_id, "io"),
                self._suspect_series(low, "io_bytes_ps"),
                now,
            )
            cpu_res = self.identifier.identify(
                "cpu",
                self.detector.signal(app_id, "cpi"),
                self._suspect_series(low, "llc_miss_rate"),
                now,
            )
            io_antagonists |= io_res.antagonists
            cpu_antagonists |= cpu_res.antagonists

        self._control("io", io_antagonists, io_contention, samples, now)
        self._control("cpu", cpu_antagonists, cpu_contention, samples, now)
        self._record_cap_history(now)

    # ------------------------------------------------------------- internals
    def _suspect_series(self, low, metric: str) -> Dict[str, TimeSeries]:
        out: Dict[str, TimeSeries] = {}
        for info in low:
            hist = self.monitor.history.get(info.name)
            if hist is not None:
                out[info.name] = hist[metric]
        return out

    def _control(
        self,
        resource: str,
        antagonists: Set[str],
        contention: bool,
        samples: Dict[str, VmSample],
        now: float,
    ) -> None:
        # Every existing cap keeps evolving (cubic recovery must continue
        # even after a VM ages out of the antagonist set), while *new* caps
        # are only created for identified antagonists at a moment of actual
        # contention — Eq. 1 starts from a multiplicative decrease of the
        # observed usage.
        tracked = {vm for (vm, r) in self.cap_states if r == resource}
        for vm_name in sorted(antagonists | tracked):
            key = (vm_name, resource)
            state = self.cap_states.get(key)
            is_antagonist = vm_name in antagonists
            if state is None:
                if not (contention and is_antagonist):
                    continue
                usage = self._observed_usage(vm_name, resource, samples)
                if usage is None or usage <= 0:
                    continue
                state = self.controller.start(usage)
                self.cap_states[key] = state
            was_released = state.released
            self.controller.update(state, contention and is_antagonist)
            self._actuate(vm_name, resource, state, was_released, now)
            if state.released and not is_antagonist:
                # Fully recovered and no longer implicated: retire the
                # controller state (a fresh episode restarts from the
                # then-observed usage).
                del self.cap_states[key]

    def _observed_usage(
        self, vm_name: str, resource: str, samples: Dict[str, VmSample]
    ) -> Optional[float]:
        s = samples.get(vm_name)
        if s is None:
            return None
        if resource == "io":
            return s.io_bytes_ps
        return s.cpu_usage_cores

    def _actuate(
        self,
        vm_name: str,
        resource: str,
        state: CapState,
        was_released: bool,
        now: float,
    ) -> None:
        try:
            dom = self.conn.lookupByName(vm_name)
        except LibvirtError:
            return  # VM left the host between sampling and actuation
        if state.released:
            if not was_released:
                self._clear_cap(dom, resource)
                self.actions.append((now, vm_name, resource, None))
            return
        cap = state.absolute_cap
        if resource == "io":
            dom.setBlockIoTune("vda", {"total_bytes_sec": cap})
        else:
            cores = max(cap, dom.vcpus() * 0.01)
            quota = max(1000, int(round(cores / dom.vcpus() * VCPU_PERIOD_US)))
            dom.setSchedulerParameters(
                {"vcpu_quota": quota, "vcpu_period": VCPU_PERIOD_US}
            )
        self.actions.append((now, vm_name, resource, state.cap))

    def _clear_cap(self, dom: Domain, resource: str) -> None:
        if resource == "io":
            dom.setBlockIoTune("vda", {"total_bytes_sec": 0})
        else:
            dom.setSchedulerParameters({"vcpu_quota": -1})

    def _record_cap_history(self, now: float) -> None:
        for key, state in self.cap_states.items():
            ts = self.cap_history.setdefault(
                key, TimeSeries(name=f"{key[0]}.{key[1]}.cap")
            )
            ts.append(now, state.cap if not state.released else float("nan"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeManager(host={self.host_name!r}, caps={len(self.cap_states)})"
