"""Sharded cluster stepping: one coordinator tick, one shard per host.

Historically every :class:`~repro.core.node_manager.NodeManager` owned
its own :class:`~repro.sim.engine.PeriodicTask`, so a fig11-scale run
interleaved ``num_hosts`` separate periodic events per control interval
— each paying event-heap traffic and reschedule bookkeeping.  The
:class:`ShardedControlPlane` collapses them into **one** coordinator
task per deployment: each host's monitor → detector → identifier →
node-manager chain is an independent *shard*, and the coordinator steps
the shards in attach order.

With ``workers=0`` each shard runs its whole interval in-process —
byte-identical to the historical per-host tasks: the old tasks were
created back-to-back at deployment, giving them contiguous event
sequence numbers, identical epochs and identical intervals, so at every
interval they fired consecutively in creation order; the coordinator
occupies the first task's position and preserves exactly that order.

With ``workers=N`` the tick becomes a three-phase pipeline over a
persistent fork pool (:mod:`repro.core.shardpool`):

* **phase A (parent)** — every shard's ``begin_interval``: libvirt
  sampling into its shared-memory metric plane, inventory snapshot,
  ticket construction; then each plane publishes the epoch.
* **phase B (pool)** — workers run the pure compute half (detection +
  identification) against their fork-inherited replicas, reading plane
  columns zero-copy, and return compact verdicts.
* **phase C (parent)** — verdicts are applied *in attach order*
  (actuation + absorption into the parent replicas), so the merged
  outcome is byte-identical to ``workers=0`` regardless of which worker
  finished first.  Dead or stale workers are detected by heartbeat and
  their tickets recomputed serially through the very same code path.

Phases reorder work *within* one simulator event only: phase A does all
sampling before any actuation instead of interleaving per host.  On a
fault-free facade those calls are pure reads/writes of per-host state
with no randomness, so the reordering is unobservable; with a fault
injector the per-call fault stream *would* see a different call order,
so deployments force ``workers=0`` whenever an injector is wired in.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Optional

from repro.sim.engine import Simulator

__all__ = ["ShardedControlPlane"]

#: Lazily-cached :func:`repro.experiments.parallel.run_many` — resolved
#: once instead of an import-system lookup every control interval
#: (module-level import would be circular via repro.experiments.harness).
_run_many = None


def _step_shard(nm) -> None:
    """Advance one host's control chain by one interval."""
    nm.control_interval()


class ShardedControlPlane:
    """Steps every attached node manager from a single periodic task."""

    def __init__(self, sim: Simulator, interval_s: float, *, workers: int = 0,
                 ticket_free: bool = True) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers!r}")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        self.sim = sim
        self.interval_s = float(interval_s)
        self.workers = int(workers)
        #: Skip the pool round-trip for quiet hosts (no detector in
        #: deviation, no caps in force) and run their compute half
        #: parent-side through the very same serial-fallback path — a
        #: routing decision only, so results are byte-identical either
        #: way.  Toggleable so both modes stay measurable.
        self.ticket_free = bool(ticket_free)
        #: Attached shards by host name, in attach order (= step order).
        self._shards: Dict[str, object] = {}
        self._task = None
        self._pool = None
        self._epoch = 0
        #: Wall-clock phase accounting (seconds) for the scale benchmark.
        self.timings: Dict[str, float] = {
            "begin_s": 0.0, "compute_s": 0.0, "complete_s": 0.0,
            "parallel_ticks": 0.0, "serial_ticks": 0.0,
            "fallback_tickets": 0.0, "ticket_free": 0.0,
        }

    # ------------------------------------------------------------ membership
    def attach(self, nm) -> None:
        """Register a node manager as a shard (idempotent per object).

        The coordinator task is created on the first attach, so it takes
        that agent's position in the event order.  Two *different*
        agents claiming one host are refused — a silent replacement
        would corrupt the attach order the byte-identity argument (and
        the worker host assignment) is built on.
        """
        current = self._shards.get(nm.host_name)
        if current is not None and current is not nm:
            raise ValueError(
                f"host {nm.host_name!r} already has an attached shard; "
                "detach the existing node manager before attaching a new "
                "one (silent replacement would corrupt the deterministic "
                "step order)"
            )
        self._shards[nm.host_name] = nm
        if self._task is None or self._task.stopped:
            self._task = self.sim.every(
                self.interval_s, self.tick, name="control-plane-shards"
            )

    def detach(self, nm) -> None:
        """Unregister a shard; the coordinator stops when none remain."""
        current = self._shards.get(nm.host_name)
        if current is not nm:
            return
        del self._shards[nm.host_name]
        if not self._shards and self._task is not None:
            self._task.stop()

    def attached(self, nm) -> bool:
        """Whether ``nm`` is a live shard of a running coordinator."""
        return (
            self._shards.get(nm.host_name) is nm
            and self._task is not None
            and not self._task.stopped
        )

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        """One control interval: step every shard, in attach order."""
        if self.workers > 0 and self._shards:
            pool = self._ensure_pool()
            if pool is not None:
                self._tick_parallel(pool)
                return
        global _run_many
        if _run_many is None:
            from repro.experiments.parallel import run_many as _rm

            _run_many = _rm
        self.timings["serial_ticks"] += 1
        _run_many(list(self._shards.values()), _step_shard, workers=0)

    def _tick_parallel(self, pool) -> None:
        self._epoch += 1
        epoch = self._epoch
        self.timings["parallel_ticks"] += 1

        # Phase A: sample + snapshot every shard, publish every plane.
        t0 = time.perf_counter()
        work = []
        for nm in self._shards.values():
            ctx = nm.begin_interval(epoch)
            if ctx is not None:
                nm.monitor.plane.publish(epoch)
                work.append((nm, ctx))
        t1 = time.perf_counter()

        # Phase B: ship tickets to the pool (attach-order round-robin);
        # hosts a worker has never seen stay parent-side, and quiet
        # hosts skip the round-trip entirely (ticket-free ticks) — both
        # fall through to the phase-C serial path, so where a ticket
        # runs never changes what it computes.  Pool-bound tickets carry
        # victim-signal tails so the worker can close any history gap
        # the skipped ticks left in its replica.
        assignments: Dict[int, list] = {}
        skipped = 0
        host_slot = {
            host: idx % pool.workers
            for idx, host in enumerate(self._shards)
        }
        for nm, ctx in work:
            slot = host_slot[nm.host_name]
            if nm.host_name not in pool.known_hosts(slot):
                continue
            if self.ticket_free and nm.quiet_interval(ctx):
                skipped += 1
                continue
            assignments.setdefault(slot, []).append(
                replace(ctx.ticket, victim_tails=nm.victim_tails(ctx.ticket))
            )
        results = pool.compute(assignments) if assignments else {}
        t2 = time.perf_counter()

        # Phase C: apply verdicts in attach order; anything the pool
        # could not deliver is recomputed serially right here.
        for nm, ctx in work:
            verdict = results.get(nm.host_name)
            if verdict is not None:
                nm.complete_interval(ctx, verdict, absorb=True)
            else:
                nm.compute_and_complete(ctx)
        t3 = time.perf_counter()

        self.timings["begin_s"] += t1 - t0
        self.timings["compute_s"] += t2 - t1
        self.timings["complete_s"] += t3 - t2
        self.timings["ticket_free"] += skipped
        # Deliberate skips are not fallbacks: a fallback is a ticket the
        # pool was *supposed* to compute but could not (unknown host,
        # worker death, deadline).
        self.timings["fallback_tickets"] += len(work) - skipped - len(results)

        # Tick boundary: every verdict absorbed, parent state == worker
        # state — the only moment a (re)spawn fork is valid.
        pool.ensure_started(self._worker_shards())

    def _ensure_pool(self):
        """The persistent pool, forked lazily at the first parallel tick."""
        if self._pool is None:
            from repro.core.shardpool import ShardPool

            self._pool = ShardPool(min(self.workers, max(1, len(self._shards))))
        if not self._pool.ensure_started(self._worker_shards()):
            return None
        return self._pool

    def _worker_shards(self):
        from repro.core.shardpool import WorkerShard

        return {host: WorkerShard(nm) for host, nm in self._shards.items()}

    def pool_stats(self) -> Optional[Dict[str, object]]:
        """Shard-pool health counters, or ``None`` before the first fork."""
        pool = self._pool
        if pool is None:
            return None
        return {
            "worker_deaths": pool.worker_deaths,
            "respawns": pool.respawns,
            "fallback_tickets": pool.fallback_tickets,
            "failed": pool.failed,
        }

    def shutdown(self) -> None:
        """Stop the worker pool (shards and coordinator task stay)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = self._task is not None and not self._task.stopped
        return (f"ShardedControlPlane(shards={len(self._shards)}, "
                f"workers={self.workers}, alive={alive})")
