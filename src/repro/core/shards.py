"""Sharded cluster stepping: one coordinator tick, one shard per host.

Historically every :class:`~repro.core.node_manager.NodeManager` owned
its own :class:`~repro.sim.engine.PeriodicTask`, so a fig11-scale run
interleaved ``num_hosts`` separate periodic events per control interval
— each paying event-heap traffic and reschedule bookkeeping.  The
:class:`ShardedControlPlane` collapses them into **one** coordinator
task per deployment: each host's monitor → detector → identifier →
node-manager chain is an independent *shard*, and the coordinator steps
the shards through :func:`~repro.experiments.parallel.run_many` — the
same dispatch engine the experiment sweeps use.

Byte-identity with the per-host tasks (serial workers): the old tasks
were created back-to-back at deployment, giving them contiguous event
sequence numbers, identical epochs and identical intervals — so at every
interval they fired consecutively, in creation order, with no foreign
event between them.  The coordinator occupies the first task's position
in the event order and steps the shards in exactly that creation order,
producing the same per-interval execution sequence.

Shards hold live simulator state, so they cannot cross a process
boundary: ``workers`` must stay 0 (the serial in-process path of
``run_many``, which is byte-identical to a plain loop by construction).
Real-cluster deployments would instead run one agent process per host —
the decentralized architecture of the paper needs no coordinator at all;
this one exists purely to batch simulator events.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator

__all__ = ["ShardedControlPlane"]


def _step_shard(nm) -> None:
    """Advance one host's control chain by one interval."""
    nm.control_interval()


class ShardedControlPlane:
    """Steps every attached node manager from a single periodic task."""

    def __init__(self, sim: Simulator, interval_s: float, *, workers: int = 0) -> None:
        if workers != 0:
            raise ValueError(
                "in-simulator shards hold live engine state and cannot be "
                "pickled across processes; workers must be 0 "
                f"(got {workers!r})"
            )
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        self.sim = sim
        self.interval_s = float(interval_s)
        self.workers = workers
        #: Attached shards by host name, in attach order (= step order).
        self._shards: Dict[str, object] = {}
        self._task = None

    # ------------------------------------------------------------ membership
    def attach(self, nm) -> None:
        """Register a node manager as a shard (idempotent).

        The coordinator task is created on the first attach, so it takes
        that agent's position in the event order.
        """
        self._shards[nm.host_name] = nm
        if self._task is None or self._task.stopped:
            self._task = self.sim.every(
                self.interval_s, self.tick, name="control-plane-shards"
            )

    def detach(self, nm) -> None:
        """Unregister a shard; the coordinator stops when none remain."""
        current = self._shards.get(nm.host_name)
        if current is not nm:
            return
        del self._shards[nm.host_name]
        if not self._shards and self._task is not None:
            self._task.stop()

    def attached(self, nm) -> bool:
        """Whether ``nm`` is a live shard of a running coordinator."""
        return (
            self._shards.get(nm.host_name) is nm
            and self._task is not None
            and not self._task.stopped
        )

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        """One control interval: step every shard, in attach order."""
        # Imported here: repro.experiments.harness imports the core
        # package, so a module-level import would be circular.
        from repro.experiments.parallel import run_many

        run_many(list(self._shards.values()), _step_shard, workers=self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = self._task is not None and not self._task.stopped
        return f"ShardedControlPlane(shards={len(self._shards)}, alive={alive})"
