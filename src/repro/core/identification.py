"""Antagonist identification via online cross-correlation (§III-B).

For I/O contention, PerfCloud correlates the victim application's
iowait-ratio-deviation time series against each low-priority VM's I/O
throughput series; for processor contention, the CPI-deviation series
against each low-priority VM's LLC miss-rate series.  A suspect whose
Pearson coefficient reaches the threshold (0.8) is an antagonist.

Two fidelity details from the paper:

* **missing-as-zero** — instants where a suspect's cgroup counted no
  events contribute 0 rather than being omitted, so sparse suspects
  cannot look highly-correlated off three lucky samples (Fig. 6);
* **small windows work** — identification is reliable from as few as 3
  samples (Fig. 5c), so mitigation can start within ~3 intervals.

Identified antagonists carry a TTL: they stay throttle-eligible while
the controller works even if the (now throttled) suspect's own signal
flattens out.

Incremental scoring
-------------------
Under the paper's missing-as-zero policy the per-interval update is
O(1) per (victim, suspect) pair: the identifier caches each suspect's
aligned value ring against the victim's tail grid, and when the grid
advances by one instant (the steady state: one new deviation sample per
control interval) it shifts the ring, looks up the single new instant
and re-runs the *same* Pearson kernel — producing bit-identical scores
to :func:`~repro.metrics.correlation.aligned_pearson_many` because the
input vectors are elementwise identical.  The cached ring is reused only
when it provably still matches what a fresh alignment would produce:

* the suspect series object is the same one (``ref is``) and has evicted
  nothing (``dropped`` unchanged) — eviction could change which sample
  is nearest an old instant;
* either no samples were appended, or every possible new sample lies
  strictly beyond the newest *cached* instant plus the lookup tolerance
  (appends are monotone, so ``last_time`` bounds them from below) — a
  new sample can only change the result at an old instant by landing
  within the lookup tolerance of it;
* the victim grid is spaced at least ``_MIN_GRID_SPACING`` apart — on
  denser (sub-10 µs) grids the identifier falls back to the full
  realignment, which is always correct.

Anything else — a reset victim series, a pruned suspect, an arbitrary
grid jump — falls back to the full per-suspect realignment for exactly
the affected pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

import numpy as np

from repro.core.config import PerfCloudConfig
from repro.metrics.correlation import (
    MissingPolicy,
    aligned_pearson_many,
    pearson_deviates,
    victim_deviates,
)
from repro.metrics.timeseries import TimeSeries

__all__ = ["IdentificationResult", "AntagonistIdentifier"]

#: Grids spaced closer than this (seconds) disable the incremental path:
#: the slide/step safety argument needs instants further apart than the
#: lookup tolerance.  Control intervals are seconds apart; only synthetic
#: (test) grids ever trip this.
_MIN_GRID_SPACING = 1e-5

#: A suspect whose newest cached sample lies this far past the newest
#: cached grid instant cannot receive a later append that lands within
#: the lookup tolerance (1e-6) of any cached instant, even with the
#: 1e-9 monotonicity slack of ``TimeSeries.append``.
_SAFE_GAP = 2e-6


@dataclass
class IdentificationResult:
    """Correlation scores and the antagonist verdicts for one resource."""

    resource: str  # "io" | "cpu"
    correlations: Dict[str, float]
    antagonists: Set[str]


class _SuspectRec:
    """Cached alignment of one suspect against one victim grid."""

    __slots__ = ("ref", "s_vals", "score", "appended", "dropped", "last_time")

    def __init__(self, ref, s_vals: np.ndarray, score: float) -> None:
        self.ref = ref
        self.s_vals = s_vals
        self.score = score
        self.appended = ref.appended
        self.dropped = ref.dropped
        self.last_time = ref.last_time

    def refresh(self) -> None:
        self.appended = self.ref.appended
        self.dropped = self.ref.dropped
        self.last_time = self.ref.last_time


class _VictimState:
    """Per (resource, victim-series) incremental-scoring state."""

    __slots__ = ("victim", "grid", "v_vals", "sus")

    def __init__(self, victim) -> None:
        self.victim = victim
        self.grid: np.ndarray = np.empty(0)
        self.v_vals: np.ndarray = np.empty(0)
        self.sus: Dict[str, _SuspectRec] = {}


class AntagonistIdentifier:
    """Correlates victim deviation signals with suspect usage series."""

    def __init__(
        self,
        config: PerfCloudConfig,
        missing_policy: MissingPolicy = MissingPolicy.ZERO,
    ) -> None:
        self.config = config
        self.missing_policy = missing_policy
        #: Last time each (resource, vm) pair crossed the threshold.
        self._last_hit: Dict[tuple, float] = {}
        #: Incremental state per (resource, id(victim series)).  The state
        #: holds a strong reference to the victim, so the id stays valid
        #: for as long as the entry exists.
        self._inc: Dict[tuple, _VictimState] = {}
        #: O(1) ring updates taken (shift + single-instant lookup).
        self.fast_updates = 0
        #: Per-suspect full realignments (cache miss or unsafe reuse).
        self.full_recomputes = 0
        #: Whole calls routed to ``aligned_pearson_many`` (OMIT policy or
        #: a grid denser than the incremental path supports).
        self.fallbacks = 0

    def identify(
        self,
        resource: str,
        victim_signal: TimeSeries,
        suspects: Mapping[str, TimeSeries],
        now: float,
    ) -> IdentificationResult:
        """Score every suspect and return those at/above the threshold.

        ``victim_signal`` is the application's deviation series (iowait
        std for ``resource="io"``, CPI std for ``"cpu"``); ``suspects``
        maps low-priority VM names to their usage series (I/O throughput
        or LLC miss rate respectively).
        """
        if resource not in ("io", "cpu"):
            raise ValueError(f"resource must be 'io' or 'cpu', got {resource!r}")
        antagonists: Set[str] = set()
        if len(victim_signal) < self.config.corr_min_samples:
            # Too little victim history: no scores, and deliberately no TTL
            # refresh either — identification has not run this interval.
            return IdentificationResult(
                resource=resource,
                correlations={vm: 0.0 for vm in suspects},
                antagonists=antagonists,
            )
        correlations = self._scores(resource, victim_signal, suspects)
        return IdentificationResult(
            resource=resource,
            correlations=correlations,
            antagonists=self.judge(resource, correlations, now),
        )

    def judge(
        self, resource: str, correlations: Mapping[str, float], now: float
    ) -> Set[str]:
        """Threshold + TTL pass over already-computed correlations.

        The state-mutating tail of :meth:`identify`: a parent absorbing a
        pool worker's verdict replays this with the worker's scores, so
        ``_last_hit`` stays in lockstep across the replicas.  Antagonists
        are always a subset of ``correlations`` — a VM outside the
        current suspect set is never resurrected by its TTL alone.
        """
        antagonists: Set[str] = set()
        for vm, r in correlations.items():
            key = (resource, vm)
            if r >= self.config.corr_threshold:
                self._last_hit[key] = now
            # TTL: keep throttling recently-identified antagonists even if
            # their (throttled) signal no longer co-varies.
            last = self._last_hit.get(key)
            if last is not None and now - last <= self.config.antagonist_ttl_s:
                antagonists.add(vm)
        return antagonists

    def forget(self, vm: str) -> None:
        """Drop TTL and cached-alignment state for a departed VM."""
        for key in [k for k in self._last_hit if k[1] == vm]:
            del self._last_hit[key]
        for st in self._inc.values():
            st.sus.pop(vm, None)

    # ------------------------------------------------------------- internals
    def _scores(
        self,
        resource: str,
        victim: TimeSeries,
        suspects: Mapping[str, TimeSeries],
    ) -> Dict[str, float]:
        """Per-suspect Pearson scores ≡ ``aligned_pearson_many``."""
        window = self.config.corr_window
        if self.missing_policy is not MissingPolicy.ZERO or not suspects:
            return aligned_pearson_many(
                victim, suspects, window=window, policy=self.missing_policy
            )
        times, v_vals = victim.tail(window)
        if times.size < 2:
            return {vm: 0.0 for vm in suspects}
        key = (resource, id(victim))
        st = self._inc.get(key)
        mode = "rebuild"
        if st is not None and st.victim is victim:
            n, o = times.size, st.grid.size
            if (n == o and np.array_equal(times, st.grid)
                    and np.array_equal(v_vals, st.v_vals)):
                mode = "same"
            elif (n == o + 1 and np.array_equal(times[:-1], st.grid)
                    and np.array_equal(v_vals[:-1], st.v_vals)):
                mode = "step"  # window still filling: one instant appended
            elif (n == o == window and np.array_equal(times[:-1], st.grid[1:])
                    and np.array_equal(v_vals[:-1], st.v_vals[1:])):
                mode = "slide"  # steady state: window advanced by one
        # Grid-density guard for the slide safety argument.  A stored grid
        # already passed it, so modes extending one only check the single
        # new gap; a fresh grid is checked in full.  Too-dense grids always
        # realign (still exact).
        if mode == "same":
            dense = False
        elif mode != "rebuild":
            dense = float(times[-1] - times[-2]) < _MIN_GRID_SPACING
        else:
            dense = float(np.min(np.diff(times))) < _MIN_GRID_SPACING
        if dense:
            self._inc.pop(key, None)
            self.fallbacks += 1
            return aligned_pearson_many(
                victim, suspects, window=window, policy=self.missing_policy
            )
        if mode == "rebuild":
            st = _VictimState(victim)

        t_last = float(times[-1])
        # The newest grid instant whose cached suspect value is reused.
        anchor = t_last if mode == "same" else float(times[-2])
        # Victim-side Pearson deviates, hoisted once per interval and
        # computed lazily (a pure cache-hit interval never needs them).
        vd: Optional[np.ndarray] = None
        vv = 0.0
        scores: Dict[str, float] = {}
        new_sus: Dict[str, _SuspectRec] = {}
        for vm, series in suspects.items():
            rec = st.sus.get(vm) if mode != "rebuild" else None
            safe = (
                rec is not None
                and rec.ref is series
                and series.dropped == rec.dropped
                and (
                    series.appended == rec.appended
                    or (rec.last_time is not None
                        and (rec.last_time == anchor
                             or rec.last_time > anchor + _SAFE_GAP))
                )
            )
            if safe and mode == "same":
                score = rec.score
                rec.refresh()
                self.fast_updates += 1
            elif safe:  # step or slide: shift the ring, look up one instant
                if vd is None:
                    vd, vv = victim_deviates(v_vals)
                if mode == "step":
                    s_vals = np.empty(times.size)
                    s_vals[:-1] = rec.s_vals
                else:
                    # Steady state: shift the ring in place (the buffer is
                    # owned by this record, never aliased elsewhere).
                    s_vals = rec.s_vals
                    s_vals[:-1] = s_vals[1:]
                nv = series.value_at(t_last)
                s_vals[-1] = nv if nv is not None else 0.0
                score = pearson_deviates(vd, vv, s_vals)
                rec.s_vals = s_vals
                rec.score = score
                rec.refresh()
                self.fast_updates += 1
            else:
                if vd is None:
                    vd, vv = victim_deviates(v_vals)
                s_vals, _ = series.lookup(times)
                score = pearson_deviates(vd, vv, s_vals)
                rec = _SuspectRec(series, s_vals, score)
                self.full_recomputes += 1
            new_sus[vm] = rec
            scores[vm] = score
        st.grid = np.array(times, copy=True)
        st.v_vals = np.array(v_vals, copy=True)
        st.sus = new_sus
        self._inc[key] = st
        return scores
