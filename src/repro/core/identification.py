"""Antagonist identification via online cross-correlation (§III-B).

For I/O contention, PerfCloud correlates the victim application's
iowait-ratio-deviation time series against each low-priority VM's I/O
throughput series; for processor contention, the CPI-deviation series
against each low-priority VM's LLC miss-rate series.  A suspect whose
Pearson coefficient reaches the threshold (0.8) is an antagonist.

Two fidelity details from the paper:

* **missing-as-zero** — instants where a suspect's cgroup counted no
  events contribute 0 rather than being omitted, so sparse suspects
  cannot look highly-correlated off three lucky samples (Fig. 6);
* **small windows work** — identification is reliable from as few as 3
  samples (Fig. 5c), so mitigation can start within ~3 intervals.

Identified antagonists carry a TTL: they stay throttle-eligible while
the controller works even if the (now throttled) suspect's own signal
flattens out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Set

from repro.core.config import PerfCloudConfig
from repro.metrics.correlation import MissingPolicy, aligned_pearson_many
from repro.metrics.timeseries import TimeSeries

__all__ = ["IdentificationResult", "AntagonistIdentifier"]


@dataclass
class IdentificationResult:
    """Correlation scores and the antagonist verdicts for one resource."""

    resource: str  # "io" | "cpu"
    correlations: Dict[str, float]
    antagonists: Set[str]


class AntagonistIdentifier:
    """Correlates victim deviation signals with suspect usage series."""

    def __init__(
        self,
        config: PerfCloudConfig,
        missing_policy: MissingPolicy = MissingPolicy.ZERO,
    ) -> None:
        self.config = config
        self.missing_policy = missing_policy
        #: Last time each (resource, vm) pair crossed the threshold.
        self._last_hit: Dict[tuple, float] = {}

    def identify(
        self,
        resource: str,
        victim_signal: TimeSeries,
        suspects: Mapping[str, TimeSeries],
        now: float,
    ) -> IdentificationResult:
        """Score every suspect and return those at/above the threshold.

        ``victim_signal`` is the application's deviation series (iowait
        std for ``resource="io"``, CPI std for ``"cpu"``); ``suspects``
        maps low-priority VM names to their usage series (I/O throughput
        or LLC miss rate respectively).
        """
        if resource not in ("io", "cpu"):
            raise ValueError(f"resource must be 'io' or 'cpu', got {resource!r}")
        antagonists: Set[str] = set()
        if len(victim_signal) < self.config.corr_min_samples:
            # Too little victim history: no scores, and deliberately no TTL
            # refresh either — identification has not run this interval.
            return IdentificationResult(
                resource=resource,
                correlations={vm: 0.0 for vm in suspects},
                antagonists=antagonists,
            )
        # One matrix-style pass: the victim tail is aligned once and every
        # suspect is scored with a vectorized lookup over its history.
        correlations = aligned_pearson_many(
            victim_signal,
            suspects,
            window=self.config.corr_window,
            policy=self.missing_policy,
        )
        for vm, r in correlations.items():
            key = (resource, vm)
            if r >= self.config.corr_threshold:
                self._last_hit[key] = now
            # TTL: keep throttling recently-identified antagonists even if
            # their (throttled) signal no longer co-varies.
            last = self._last_hit.get(key)
            if last is not None and now - last <= self.config.antagonist_ttl_s:
                antagonists.add(vm)
        return IdentificationResult(
            resource=resource, correlations=correlations, antagonists=antagonists
        )

    def forget(self, vm: str) -> None:
        """Drop TTL state for a departed VM."""
        for key in [k for k in self._last_hit if k[1] == vm]:
            del self._last_hit[key]
