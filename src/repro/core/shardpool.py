"""Persistent fork pool stepping per-host compute halves in parallel.

One pool per :class:`~repro.core.shards.ShardedControlPlane`.  Workers
are forked from the coordinating parent, inheriting every node manager's
detector/identifier replicas and the shared-memory metric planes; each
coordinator tick feeds them batches of
:class:`~repro.core.verdict.ComputeTicket` work orders over duplex pipes
and collects :class:`~repro.core.verdict.ControlVerdict` results.

**Replica lockstep** is the invariant making any tick boundary a valid
fork point: the parent absorbs every verdict (``detector.record`` +
``identifier.judge`` with the worker-computed values), so parent state
equals worker state at the end of every tick — a respawned worker is
simply a fresh fork and is in sync by construction.

**Failure containment** reuses the heartbeat idiom of
:mod:`repro.resilience.supervisor`: each worker beats a lock-free shared
slot from a daemon thread; a stale beat, a dead pipe, a per-tick
deadline, or any in-worker exception kills that worker for the tick.
Its tickets are recomputed serially in the parent (same code path, so
results are identical), and the pool respawns the slot at the next tick
boundary — a worker that errored mid-ticket may hold a diverged replica
and must never be fed again.  Past the respawn budget the pool fails
permanently and the coordinator stays serial.

Hosts attached after a worker was (re)spawned are unknown to it; their
tickets run parent-side until a respawn refreshes the membership
snapshot.  Determinism is unaffected: results merge in attach order
regardless of where they were computed.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Mapping, Optional

from repro.core.monitor import PLANE_METRICS
from repro.core.verdict import ComputeTicket, ControlVerdict, compute_verdict
from repro.metrics.timeseries import TimeSeries

__all__ = ["WorkerShard", "ShardPool", "WORKER_ENV"]

#: Set in pool workers (mirrors the supervised-runner convention) so
#: worker-only behaviour — and chaos faults — can be gated on it.
WORKER_ENV = "REPRO_SHARD_WORKER"


class WorkerShard:
    """One host's compute-side state, captured for fork inheritance."""

    __slots__ = ("detector", "identifier", "plane", "history", "config")

    def __init__(self, nm) -> None:
        self.detector = nm.detector
        self.identifier = nm.identifier
        self.plane = nm.monitor.plane
        self.history = nm.monitor.history
        self.config = nm.config

    def series_of(self, name: str, metric: str):
        """Resolve a suspect's usage series in the worker.

        The fork-copied history dict may lack VMs that appeared after
        the fork; entries are created lazily exactly the way the parent
        monitor creates them, so the identity-keyed incremental scorer
        sees a stable object per (VM, metric) across ticks.
        """
        hist = self.history.get(name)
        if hist is None:
            hist = self.history[name] = {
                k: self.plane.series(name, k) for k in PLANE_METRICS
            }
        return hist[metric]

    def reconcile_victims(self, ticket: ComputeTicket) -> None:
        """Fill victim-signal gaps left by ticket-free ticks.

        A tick the coordinator skipped (host quiet, computed parent-side)
        appended a detection value to the parent's signal history that
        this replica never saw.  Every pool-bound ticket ships the tail
        of each victim signal — all values originate from absorbed
        verdicts, so appending the entries newer than the replica's last
        time restores bit-identical suffixes.  The identifier's
        incremental cache sees a jumped grid and takes its rebuild path
        (a full realign: same scores, one slower interval).  Appending to
        the *detector's own* series keeps the victim object identity
        stable, which is what the incremental fast path is keyed on.
        """
        for app_id, io_tail, cpi_tail in ticket.victim_tails:
            sig = self.detector.signals.get(app_id)
            if sig is None:
                sig = self.detector.signals[app_id] = {
                    "io": TimeSeries(name=f"{app_id}.iowait_std"),
                    "cpi": TimeSeries(name=f"{app_id}.cpi_std"),
                }
            for kind, (times, values) in (("io", io_tail), ("cpi", cpi_tail)):
                series = sig[kind]
                last = series.last_time
                for t, v in zip(times, values):
                    if last is None or t > last:
                        series.append(t, v)


def _worker_main(conn, heartbeats, slot: int, shards: Mapping[str, WorkerShard],
                 beat_interval: float) -> None:
    os.environ[WORKER_ENV] = "1"
    for shard in shards.values():
        plane = shard.plane
        if hasattr(plane, "enter_worker_mode"):
            plane.enter_worker_mode()
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeats[slot] = time.monotonic()
            stop.wait(beat_interval)

    threading.Thread(target=beat, daemon=True, name=f"shard-beat-{slot}").start()
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, tickets = msg
            out: List[tuple] = []
            for ticket in tickets:
                try:
                    shard = shards[ticket.host]
                    shard.plane.refresh_worker_view(ticket.rows, ticket.epoch)
                    shard.reconcile_victims(ticket)
                    verdict = compute_verdict(
                        shard.detector, shard.identifier, shard.plane,
                        ticket, {}, shard.series_of, shard.config,
                    )
                    out.append(("ok", ticket.host, verdict))
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    # The replica may be half-mutated: report and stop.
                    # The parent kills this worker and recomputes the
                    # rest of the batch serially.
                    out.append(("err", ticket.host,
                                f"{type(exc).__name__}: {exc}",
                                traceback.format_exc()))
                    break
            conn.send(("done", out))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop.set()


class _Slot:
    __slots__ = ("proc", "conn", "known_hosts")

    def __init__(self, proc, conn, known_hosts) -> None:
        self.proc = proc
        self.conn = conn
        self.known_hosts = known_hosts


class ShardPool:
    """Fixed-width pool of forked compute workers with respawn."""

    def __init__(
        self,
        workers: int,
        *,
        heartbeat_interval_s: float = 0.2,
        heartbeat_grace_s: float = 10.0,
        tick_deadline_s: float = 300.0,
        max_respawns: int = 4,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers!r}")
        self.workers = int(workers)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_grace_s = heartbeat_grace_s
        self.tick_deadline_s = tick_deadline_s
        self.max_respawns = max_respawns
        self.failed = False
        #: Workers killed (stale heartbeat, dead pipe, error, deadline).
        self.worker_deaths = 0
        #: Workers forked to replace a dead one.
        self.respawns = 0
        #: Tickets recomputed serially in the parent.
        self.fallback_tickets = 0
        self._slots: List[Optional[_Slot]] = [None] * self.workers
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = None
            self.failed = True
            self._beats = None
        else:
            self._beats = self._ctx.Array("d", self.workers, lock=False)

    # -------------------------------------------------------------- lifecycle
    def ensure_started(self, shards: Mapping[str, WorkerShard]) -> bool:
        """Fork any missing worker from the current (synced) parent state.

        Must only be called at a tick boundary — the lockstep invariant
        is what makes the fork snapshot valid.  Returns False once the
        pool has permanently failed.
        """
        if self.failed:
            return False
        for slot in range(self.workers):
            s = self._slots[slot]
            if s is not None and not s.proc.is_alive():
                # A worker can die while receiving no tickets (ticket-free
                # ticks route quiet hosts parent-side); notice the corpse
                # here instead of waiting for the next failed send.
                self._kill(slot)
                s = None
            if s is not None:
                continue
            if self.respawns > self.max_respawns:
                self.failed = True
                self.shutdown()
                return False
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            self._beats[slot] = time.monotonic()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._beats, slot, dict(shards),
                      self.heartbeat_interval_s),
                name=f"shard-worker-{slot}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._slots[slot] = _Slot(proc, parent_conn, frozenset(shards))
        return True

    def known_hosts(self, slot: int) -> frozenset:
        """Hosts the worker in ``slot`` inherited at its last (re)spawn."""
        s = self._slots[slot]
        return s.known_hosts if s is not None else frozenset()

    def shutdown(self) -> None:
        """Stop every worker; idempotent."""
        for slot in range(self.workers):
            s = self._slots[slot]
            if s is None:
                continue
            self._slots[slot] = None
            try:
                s.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            s.conn.close()
            s.proc.join(timeout=2.0)
            if s.proc.is_alive():  # pragma: no cover - wedged worker
                s.proc.kill()
                s.proc.join(timeout=2.0)

    def _kill(self, slot: int) -> None:
        s = self._slots[slot]
        if s is None:
            return
        self._slots[slot] = None
        self.worker_deaths += 1
        self.respawns += 1  # the replacement fork, charged up front
        try:
            s.conn.close()
        except OSError:  # pragma: no cover
            pass
        if s.proc.is_alive():
            s.proc.kill()
        s.proc.join(timeout=2.0)

    # ----------------------------------------------------------------- ticks
    def compute(
        self, assignments: Mapping[int, List[ComputeTicket]]
    ) -> Dict[str, ControlVerdict]:
        """Run one tick's batches; returns verdicts by host.

        Hosts missing from the result (their worker died, errored or
        timed out) are the caller's to recompute serially.
        """
        results: Dict[str, ControlVerdict] = {}
        pending: Dict[object, int] = {}
        for slot, tickets in assignments.items():
            s = self._slots[slot]
            if s is None or not tickets:
                continue
            try:
                s.conn.send(("tick", tickets))
            except (OSError, BrokenPipeError):
                self._kill(slot)
                continue
            pending[s.conn] = slot
        deadline = time.monotonic() + self.tick_deadline_s
        while pending:
            now = time.monotonic()
            if now >= deadline:
                break
            for conn in connection_wait(list(pending), timeout=min(
                    0.05, deadline - now)):
                slot = pending.pop(conn)
                try:
                    _, out = conn.recv()
                except (EOFError, OSError):
                    self._kill(slot)
                    continue
                bad = False
                for entry in out:
                    if entry[0] == "ok":
                        results[entry[1]] = entry[2]
                    else:
                        bad = True
                if bad:
                    self._kill(slot)
            stale = time.monotonic() - self.heartbeat_grace_s
            for conn, slot in list(pending.items()):
                if self._beats[slot] < stale:
                    del pending[conn]
                    self._kill(slot)
        for conn, slot in pending.items():  # tick deadline blown
            self._kill(slot)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = sum(1 for s in self._slots if s is not None)
        return (f"ShardPool(workers={self.workers}, alive={alive}, "
                f"failed={self.failed})")
