"""Pure compute half of the per-host control chain.

The node manager's Algorithm 1 interval splits into two halves around a
process boundary:

* **compute** (this module): detector deviation + incremental Pearson
  identification.  Reads only metric-plane columns and detector/
  identifier replica state — no simulator, no libvirt — and returns a
  compact picklable :class:`ControlVerdict`.
* **actuation** (stays in the parent): CUBIC control, cap application,
  reconciliation, accounting — everything touching live sim state.

A :class:`ComputeTicket` is the parent's per-(host, epoch) work order: a
frozen snapshot of the inventory facts the compute half needs (members,
suspects, plane row mapping).  :func:`compute_verdict` is the single
code path used by *both* sides — a pool worker runs it against its
fork-inherited replica, and the parent runs the very same function when
falling back to serial — so the two can never diverge behaviourally.

Determinism: tuples preserve the parent's insertion orders, floats cross
pickle bit-exactly, and the parent replays ``detector.record`` /
``identifier.judge`` with the verdict's values to keep its own replica
in lockstep (see ``core/shardpool.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Tuple

__all__ = ["ComputeTicket", "AppIdentification", "ControlVerdict",
           "compute_verdict"]

#: (resource, victim-signal kind, suspect usage metric) — the §III-B
#: pairing, in the exact order the serial interval runs them.
RESOURCE_CHAINS = (("io", "io", "io_bytes_ps"), ("cpu", "cpi", "llc_miss_rate"))


@dataclass(frozen=True)
class ComputeTicket:
    """One host's compute work order for one coordinator epoch."""

    host: str
    epoch: int
    now: float
    #: app_id → member VM names, in the parent's insertion order.
    app_members: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: Low-priority VM names with monitor history (identification input).
    suspects: Tuple[str, ...]
    #: Whether identification runs at all (any low-priority VM present).
    do_identify: bool
    #: Plane VM → row assignment snapshot (worker view rebuild).
    rows: Tuple[Tuple[str, int], ...]
    #: Victim-signal tails per app — ``(app_id, (io_times, io_values),
    #: (cpi_times, cpi_values))`` — shipped only on pool-bound tickets so
    #: a worker can fill any signal gap left by ticket-free ticks it
    #: never saw (see ``WorkerShard.reconcile_victims``).  Plain float
    #: tuples: bit-exact across pickle.
    victim_tails: Tuple[tuple, ...] = ()
    #: Whether the compute half should measure spans (telemetry on).
    trace: bool = False


@dataclass(frozen=True)
class AppIdentification:
    """One ``identify`` call's outcome for one (app, resource)."""

    app_id: str
    resource: str
    #: Whether identification actually scored (enough victim history).
    #: When False the serial path takes ``identify``'s early return —
    #: no scores *and no TTL refresh* — so the absorbing parent must
    #: not call ``judge`` either.
    ran: bool
    correlations: Dict[str, float]
    antagonists: FrozenSet[str]


@dataclass(frozen=True)
class ControlVerdict:
    """Everything the actuation half needs from one host's compute."""

    host: str
    epoch: int
    #: (app_id, iowait_std, cpi_std) per application, in order.
    detections: Tuple[Tuple[str, float, float], ...]
    identifications: Tuple[AppIdentification, ...]
    do_identify: bool
    #: (span kind, wall-clock seconds) measured by the compute half when
    #: the ticket requested tracing — carried home on the verdict pipe
    #: under ``shard_workers=N``, produced identically on the serial
    #: path.  Wall-clock only: never read by anything deterministic.
    spans: Tuple[Tuple[str, float], ...] = field(default=())


def compute_verdict(
    detector,
    identifier,
    plane,
    ticket: ComputeTicket,
    samples,
    series_of: Callable[[str, str], object],
    config,
) -> ControlVerdict:
    """Run one host's detection + identification; mutates the replicas.

    ``samples`` is the live monitor sample dict in the parent and ``{}``
    in a worker — equivalent by the sampling invariant: whenever any
    sample exists the plane is fresh at ``ticket.now`` and the detector
    takes the columnar path, and when none exists both sides hand the
    detector the same empty membership.  ``series_of(name, metric)``
    resolves a suspect's usage series (the parent's history dict, or the
    worker's lazily-extended fork copy of it).
    """
    app_members = {app: list(members) for app, members in ticket.app_members}
    trace = ticket.trace
    t0 = time.perf_counter() if trace else 0.0
    detections = detector.evaluate(ticket.now, samples, app_members, plane=plane)
    t1 = time.perf_counter() if trace else 0.0
    identifications = []
    if ticket.do_identify:
        for app_id in app_members:
            for resource, kind, metric in RESOURCE_CHAINS:
                victim = detector.signal(app_id, kind)
                ran = len(victim) >= config.corr_min_samples
                result = identifier.identify(
                    resource,
                    victim,
                    {name: series_of(name, metric) for name in ticket.suspects},
                    ticket.now,
                )
                identifications.append(AppIdentification(
                    app_id=app_id,
                    resource=resource,
                    ran=ran,
                    correlations=dict(result.correlations),
                    antagonists=frozenset(result.antagonists),
                ))
    spans: Tuple[Tuple[str, float], ...] = ()
    if trace:
        t2 = time.perf_counter()
        spans = (("detector.evaluate", t1 - t0),
                 ("identifier.identify", t2 - t1))
    return ControlVerdict(
        host=ticket.host,
        epoch=ticket.epoch,
        detections=tuple(
            (app_id, d.iowait_std, d.cpi_std) for app_id, d in detections.items()
        ),
        identifications=tuple(identifications),
        do_identify=ticket.do_identify,
        spans=spans,
    )
