"""Comparison policies for the Fig. 9(c) evaluation.

* :class:`DefaultPolicy` — the default system: no resource capping at all
  (the do-nothing strawman every figure normalizes against);
* :class:`StaticCapPolicy` — the paper's static alternative: a fixed
  20 % I/O cap on the fio VM and a 20 % CPU cap on the STREAM VM.  It
  isolates about as well as PerfCloud on the victim (33 % vs 31 % in the
  paper) but keeps the antagonists throttled even when the high-priority
  application is idle — the unwarranted-degradation cost PerfCloud's
  dynamic control avoids.

Both expose the same lifecycle as :class:`~repro.core.perfcloud.PerfCloud`
so the experiment harness can swap them freely.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.virt.libvirt_api import VCPU_PERIOD_US

__all__ = ["DefaultPolicy", "StaticCapPolicy"]


class DefaultPolicy:
    """No isolation: the baseline 'default system'."""

    def __init__(self, sim: Simulator, cloud) -> None:
        self.sim = sim
        self.cloud = cloud

    def stop(self) -> None:  # same lifecycle as PerfCloud
        """Nothing to undo."""


class StaticCapPolicy:
    """Fixed fractional caps applied up-front to named antagonists.

    ``io_caps`` maps VM name -> cap fraction of the VM's *unthrottled*
    I/O throughput; ``cpu_caps`` likewise for CPU usage.  Baselines are
    supplied by the caller (measured from an uncontended run), mirroring
    how an operator would size a static 20 % cap.
    """

    def __init__(
        self,
        sim: Simulator,
        cloud,
        *,
        io_caps: Optional[Dict[str, Tuple[float, float]]] = None,
        cpu_caps: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> None:
        """``io_caps[vm] = (fraction, baseline_bytes_ps)``;
        ``cpu_caps[vm] = (fraction, baseline_cores)``."""
        self.sim = sim
        self.cloud = cloud
        self.io_caps = dict(io_caps or {})
        self.cpu_caps = dict(cpu_caps or {})
        self.applied: Dict[str, Dict[str, float]] = {}
        self._apply()

    def _apply(self) -> None:
        for vm_name, (fraction, baseline) in self.io_caps.items():
            if not 0 < fraction <= 1 or baseline <= 0:
                raise ValueError(f"invalid I/O cap for {vm_name!r}")
            host = self.cloud.cluster.vms[vm_name].host_name
            dom = self.cloud.connection(host).lookupByName(vm_name)
            cap = fraction * baseline
            dom.setBlockIoTune("vda", {"total_bytes_sec": cap})
            self.applied.setdefault(vm_name, {})["io"] = cap
        for vm_name, (fraction, baseline) in self.cpu_caps.items():
            if not 0 < fraction <= 1 or baseline <= 0:
                raise ValueError(f"invalid CPU cap for {vm_name!r}")
            host = self.cloud.cluster.vms[vm_name].host_name
            dom = self.cloud.connection(host).lookupByName(vm_name)
            cores = max(fraction * baseline, dom.vcpus() * 0.01)
            quota = max(1000, int(round(cores / dom.vcpus() * VCPU_PERIOD_US)))
            dom.setSchedulerParameters(
                {"vcpu_quota": quota, "vcpu_period": VCPU_PERIOD_US}
            )
            self.applied.setdefault(vm_name, {})["cpu"] = cores

    def stop(self) -> None:
        """Remove the static caps."""
        for vm_name, caps in self.applied.items():
            if vm_name not in self.cloud.cluster.vms:
                continue
            host = self.cloud.cluster.vms[vm_name].host_name
            dom = self.cloud.connection(host).lookupByName(vm_name)
            if "io" in caps:
                dom.setBlockIoTune("vda", {"total_bytes_sec": 0})
            if "cpu" in caps:
                dom.setSchedulerParameters({"vcpu_quota": -1})
        self.applied.clear()
