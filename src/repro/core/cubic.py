"""CUBIC-inspired dynamic resource control (Eq. 1, §III-C).

The cap on each antagonist follows the paper's Equation 1::

    C_i(t+1) = (1 - beta) * C_i(t)                       if I(t) > H
    C_i(t+1) = gamma * (T_i - K)^3 + C_i^max             otherwise,
    K        = cbrt(beta * C_i^max / gamma)

where ``T_i`` counts intervals since the last cap decrease and
``C_i^max`` is the cap at the moment of that decrease.  The cubic shape
gives the three regions of Fig. 7: steep initial growth back toward
``C_max``, a plateau around it, and aggressive probing beyond it.

Units: the controller works in *normalized* cap space — a cap of 1.0
equals the antagonist's resource usage observed when throttling began
(the paper initializes caps to observed usage).  Normalization is what
makes the published γ = 0.005 give a sensible recovery horizon
(K = cbrt(0.8/0.005) ≈ 5.4 intervals ≈ 27 s at the 5-second cadence,
matching the Fig. 10 timeline) for both CPU caps (~cores) and I/O caps
(~thousands of IOPS) with one constant.  The node manager converts to
device units at actuation time.

When probing pushes the normalized cap past :data:`RELEASE_LEVEL`, the
antagonist is no longer effectively constrained and the throttle is
removed entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PerfCloudConfig

__all__ = ["CapState", "CubicController", "RELEASE_LEVEL"]

#: Normalized cap level at which the throttle is lifted (the VM can use
#: more than it did pre-throttle, so the cap no longer binds).
RELEASE_LEVEL = 1.3


@dataclass
class CapState:
    """Controller state for one (antagonist VM, resource) pair."""

    #: Absolute usage observed when the VM was first throttled; the
    #: normalization base and the Eq. 1 initialization C_i(1).
    base: float
    #: Current cap, normalized to ``base``.
    cap: float = 1.0
    #: Cap at the last decrease event (C_i^max), normalized.
    c_max: float = 1.0
    #: Intervals since the last decrease (T_i).
    t: int = 0
    #: Whether the throttle has been released by probing.
    released: bool = False

    @property
    def absolute_cap(self) -> Optional[float]:
        """Cap in device units; None when released (unthrottled)."""
        if self.released:
            return None
        return self.cap * self.base


class CubicController:
    """Stateless application of Eq. 1 to a :class:`CapState`."""

    def __init__(self, config: PerfCloudConfig) -> None:
        self.config = config

    def start(self, observed_usage: float) -> CapState:
        """Begin controlling an antagonist at its observed usage."""
        base = max(float(observed_usage), 1e-9)
        return CapState(base=base, cap=1.0, c_max=1.0, t=0)

    def k(self, c_max: float) -> float:
        """Recovery horizon: intervals from decrease back to c_max."""
        return (self.config.beta * c_max / self.config.gamma) ** (1.0 / 3.0)

    def update(self, state: CapState, contention: bool) -> CapState:
        """Advance one control interval; mutates and returns ``state``."""
        cfg = self.config
        if state.released:
            if contention:
                # Re-engage from the released level.
                state.released = False
                state.cap = RELEASE_LEVEL
            else:
                return state
        if contention:
            state.c_max = state.cap
            state.cap = max(
                (1.0 - cfg.beta) * state.cap, cfg.cap_floor_frac
            )
            state.t = 0
        else:
            state.t += 1
            k = self.k(state.c_max)
            state.cap = cfg.gamma * (state.t - k) ** 3 + state.c_max
            # The cubic at T=0 equals (1-beta)*c_max by construction; it
            # can numerically dip below the floor for tiny c_max.
            state.cap = max(state.cap, cfg.cap_floor_frac)
            if state.cap >= RELEASE_LEVEL:
                state.released = True
                state.cap = RELEASE_LEVEL
        return state

    def growth_curve(self, c_max: float, intervals: int) -> list:
        """The Eq. 1 growth trajectory (for Fig. 7 and tests)."""
        if intervals < 0:
            raise ValueError("intervals must be non-negative")
        k = self.k(c_max)
        return [
            self.config.gamma * (t - k) ** 3 + c_max for t in range(intervals + 1)
        ]
