"""Interference detection: deviation of iowait ratio and CPI (§III-A).

The insight: scale-out frameworks spread work evenly across their worker
VMs, so under healthy conditions the per-VM block-iowait ratios and CPIs
on one host track each other closely.  Contention skews service unevenly
— the standard deviation across the application's VMs rises within a few
seconds, long before any task is late enough for application-level
speculation to notice.

The detector also keeps per-application deviation *time series*: the
victim signal the antagonist identifier correlates against, and the data
behind Figs. 3, 4 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.config import PerfCloudConfig
from repro.core.monitor import VmSample
from repro.metrics.plane import MetricPlane
from repro.metrics.stats import RollingStats, group_std
from repro.metrics.timeseries import TimeSeries

__all__ = ["DetectionResult", "InterferenceDetector"]


@dataclass
class DetectionResult:
    """Outcome of one detection interval for one application on one host."""

    app_id: str
    time: float
    iowait_std: float
    cpi_std: float
    io_contention: bool
    cpu_contention: bool

    @property
    def any_contention(self) -> bool:
        """Either threshold exceeded this interval."""
        return self.io_contention or self.cpu_contention


class InterferenceDetector:
    """Per-application deviation computation and thresholding."""

    def __init__(self, config: PerfCloudConfig) -> None:
        self.config = config
        #: Deviation history per app: {"io": TimeSeries, "cpi": TimeSeries}.
        self.signals: Dict[str, Dict[str, TimeSeries]] = {}
        #: Most recent :class:`DetectionResult` per app — an O(1) read
        #: for per-tick consumers (the coordinator's ticket-free skip
        #: decision, incident reporting) without touching the arrays.
        self.last: Dict[str, DetectionResult] = {}
        #: Incremental rolling mean/std of each deviation signal over the
        #: identification window — updated in O(1) as samples arrive, so
        #: per-interval consumers (adaptive thresholds, reporting) never
        #: recompute ``np.std(signal.tail(w))`` from scratch.
        self._rolling: Dict[str, Dict[str, RollingStats]] = {}

    def evaluate(
        self,
        now: float,
        samples: Mapping[str, VmSample],
        app_members: Mapping[str, List[str]],
        plane: Optional[MetricPlane] = None,
    ) -> Dict[str, DetectionResult]:
        """Compute deviations for each high-priority application.

        Parameters
        ----------
        samples:
            Per-VM smoothed metrics from the performance monitor.
        app_members:
            app_id -> names of that application's VMs on this host.
        plane:
            Optional columnar store whose newest column holds this
            interval's samples.  When it is fresh at ``now`` the member
            values come from two masked-column reads instead of per-VM
            dict probes; the result is identical (the column holds the
            very floats the samples carry, and presence in the
            ``iowait_ratio`` column is exactly membership in
            ``samples``).
        """
        results: Dict[str, DetectionResult] = {}
        use_plane = plane is not None and plane.last_time == now
        for app_id, members in app_members.items():
            if use_plane:
                io_col = plane.latest("iowait_ratio", members)
                cpi_col = plane.latest("cpi", members)
                iowait_std = group_std(io_col.values())
                cpi_std = group_std(v for v in cpi_col.values() if v > 0)
            else:
                present = [m for m in members if m in samples]
                iowait_std = group_std(samples[m].iowait_ratio for m in present)
                cpi_std = group_std(
                    samples[m].cpi for m in present if samples[m].cpi > 0
                )
            results[app_id] = self.record(now, app_id, iowait_std, cpi_std)
        return results

    def record(
        self, now: float, app_id: str, iowait_std: float, cpi_std: float
    ) -> DetectionResult:
        """Threshold one app's deviations and append its signal history.

        The shared tail of :meth:`evaluate`: a parent absorbing a pool
        worker's :class:`~repro.core.verdict.ControlVerdict` replays this
        with the worker-computed deviations, keeping both replicas of the
        detector state in lockstep.
        """
        result = DetectionResult(
            app_id=app_id,
            time=now,
            iowait_std=iowait_std,
            cpi_std=cpi_std,
            io_contention=iowait_std > self.config.h_io,
            cpu_contention=cpi_std > self.config.h_cpi,
        )
        sig = self.signals.setdefault(
            app_id,
            {
                "io": TimeSeries(name=f"{app_id}.iowait_std"),
                "cpi": TimeSeries(name=f"{app_id}.cpi_std"),
            },
        )
        sig["io"].append(now, iowait_std)
        sig["cpi"].append(now, cpi_std)
        roll = self._rolling.setdefault(
            app_id,
            {
                "io": RollingStats(self.config.corr_window),
                "cpi": RollingStats(self.config.corr_window),
            },
        )
        roll["io"].push(iowait_std)
        roll["cpi"].push(cpi_std)
        self.last[app_id] = result
        return result

    def in_deviation(self, app_ids) -> bool:
        """Whether any listed app's latest deviation crossed a threshold.

        Apps with no history yet count as quiet — safe for the
        ticket-free skip decision, which only routes *where* the compute
        half runs (parent vs pool), never whether it runs.
        """
        for app_id in app_ids:
            result = self.last.get(app_id)
            if result is not None and result.any_contention:
                return True
        return False

    def signal(self, app_id: str, kind: str) -> TimeSeries:
        """Deviation history: ``kind`` is ``"io"`` or ``"cpi"``."""
        if kind not in ("io", "cpi"):
            raise ValueError(f"kind must be 'io' or 'cpi', got {kind!r}")
        if app_id not in self.signals:
            raise KeyError(f"no signal history for app {app_id!r}")
        return self.signals[app_id][kind]

    def rolling(self, app_id: str, kind: str) -> RollingStats:
        """Incrementally-maintained window stats of one deviation signal."""
        if kind not in ("io", "cpi"):
            raise ValueError(f"kind must be 'io' or 'cpi', got {kind!r}")
        if app_id not in self._rolling:
            raise KeyError(f"no signal history for app {app_id!r}")
        return self._rolling[app_id][kind]
