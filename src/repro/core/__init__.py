"""PerfCloud: the paper's primary contribution.

The pipeline, per physical host, every 5-second interval (§III-D):

1. :class:`~repro.core.monitor.PerformanceMonitor` reads cumulative
   cgroup/libvirt counters for every hosted VM, converts them to interval
   deltas, and EWMA-smooths them;
2. :class:`~repro.core.detector.InterferenceDetector` computes the
   standard deviation of the block-iowait ratio and of CPI across the
   VMs of each high-priority application and compares them to the
   thresholds (H_io = 10, H_cpi = 1);
3. :class:`~repro.core.identification.AntagonistIdentifier` Pearson-
   correlates the victim's deviation time series with each low-priority
   VM's I/O throughput (disk) or LLC miss rate (processor), with missing
   samples treated as zero; suspects at ≥ 0.8 are antagonists;
4. :class:`~repro.core.cubic.CubicController` computes each antagonist's
   new resource cap from Eq. 1 (multiplicative decrease under contention,
   CUBIC growth otherwise);
5. :class:`~repro.core.node_manager.NodeManager` (Algorithm 1) wires the
   above and actuates caps through the libvirt facade.

:class:`~repro.core.perfcloud.PerfCloud` instantiates one decentralized
node-manager agent per host against the cloud manager, mirroring Fig. 8.
"""

from repro.core.config import PerfCloudConfig
from repro.core.cubic import CubicController, CapState
from repro.core.detector import DetectionResult, InterferenceDetector
from repro.core.identification import AntagonistIdentifier
from repro.core.monitor import PerformanceMonitor, VmSample
from repro.core.node_manager import NodeManager
from repro.core.perfcloud import PerfCloud
from repro.core.policies import DefaultPolicy, StaticCapPolicy

__all__ = [
    "AntagonistIdentifier",
    "CapState",
    "CubicController",
    "DefaultPolicy",
    "DetectionResult",
    "InterferenceDetector",
    "NodeManager",
    "PerfCloud",
    "PerfCloudConfig",
    "PerformanceMonitor",
    "StaticCapPolicy",
    "VmSample",
]
