"""Performance monitor: cumulative counters → smoothed interval metrics.

Mirrors §III-D1: "The performance monitor periodically measures the
``blkio.io_wait_time``, ``blkio.io_serviced``, and CPI metrics for each
VM belonging to a high-priority data-intensive application hosted on the
physical server.  It also measures the I/O throughput in terms of
``blkio.io_service_bytes``, LLC miss rate, and CPU usage for each
low-priority VM colocated on the same server. [...] Since these metrics
provide cumulative values from the time the VMs were booted, we
calculate the delta values between consecutive measurement intervals.
[...] applies an exponentially weighted moving average (EWMA) technique
to smooth out short-term variations in the data collected over 5 second
intervals."

The monitor talks exclusively to the libvirt facade — it would run
unchanged against real libvirt.  It is hardened against a degraded
facade: a ``LibvirtError`` on one domain's stats drops that VM for the
interval (never the whole pass), a cumulative counter running backwards
(guest reboot) restarts that VM's delta cursor instead of emitting
garbage, and both the per-VM cursor *and* the sample history are purged
when a VM leaves the host.

Storage: one :class:`~repro.metrics.plane.MetricPlane` per monitor.  The
whole interval lands as a single batched ``ingest(now, columns)`` call —
one column across every (metric, VM) ring — instead of 5 TimeSeries
appends per VM; ``history`` exposes the same dict-of-dicts read API as
before via stable :class:`~repro.metrics.plane.PlaneSeries` facades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import PerfCloudConfig
from repro.metrics.ewma import Ewma
from repro.metrics.plane import MetricPlane, PlaneSeries
from repro.metrics.stats import safe_ratio
from repro.virt.libvirt_api import Connection, LibvirtError

__all__ = ["MonitorStats", "VmSample", "PerformanceMonitor", "PLANE_METRICS"]

#: The per-VM metric columns every monitor plane stores.
PLANE_METRICS = (
    "iowait_ratio",
    "cpi",
    "io_bytes_ps",
    "llc_miss_rate",
    "cpu_usage_cores",
)


@dataclass
class MonitorStats:
    """Degraded-telemetry counters (all zero on a healthy facade)."""

    #: Whole sampling passes lost to a failed domain listing.
    list_failures: int = 0
    #: Per-VM samples dropped to a stats-read failure.
    samples_dropped: int = 0
    #: Cumulative-counter resets detected (delta cursor restarted).
    counter_resets: int = 0
    #: Departed-VM history entries purged.
    histories_purged: int = 0
    #: Stale samples pruned by the retention window.
    samples_pruned: int = 0
    #: Per-VM samples that ran entirely on preallocated buffers (no
    #: counter/delta/column dict construction this interval).
    sample_buffers_reused: int = 0


@dataclass
class VmSample:
    """Smoothed per-interval metrics of one VM."""

    time: float
    #: blkio.io_wait_time / blkio.io_serviced over the interval, ms/op.
    iowait_ratio: float
    #: Interval CPI (delta cycles / delta instructions); 0 if idle.
    cpi: float
    #: Interval I/O throughput, bytes/second.
    io_bytes_ps: float
    #: Interval LLC miss rate, misses/second; None when the cgroup ran
    #: nothing (no events counted — the missing-sample case of §III-B).
    llc_miss_rate: Optional[float]
    #: Interval CPU usage, cores.
    cpu_usage_cores: float


class _VmMonitorState:
    """Per-VM cursor over cumulative counters plus EWMA filters.

    The cursor double-buffers its counter snapshots: ``prev`` and ``cur``
    are two dicts swapped every interval and refilled in place, and the
    per-interval delta and plane-column dicts are preallocated too — the
    steady-state sampling pass constructs no dicts at all (only the
    :class:`VmSample` returned to callers, who may retain it across
    intervals).
    """

    def __init__(self, alpha: float) -> None:
        self.prev: Optional[Dict[str, float]] = None
        self.cur: Dict[str, float] = {}
        self.delta: Dict[str, float] = {}
        self.col: Dict[str, float] = {}
        self.iowait = Ewma(alpha)
        self.cpi = Ewma(alpha)
        self.io_bytes = Ewma(alpha)
        self.llc = Ewma(alpha)
        self.cpu = Ewma(alpha)


class PerformanceMonitor:
    """Samples every VM on one host through the libvirt connection."""

    def __init__(
        self,
        conn: Connection,
        config: PerfCloudConfig,
        *,
        plane: Optional[MetricPlane] = None,
    ) -> None:
        self.conn = conn
        self.config = config
        self._state: Dict[str, _VmMonitorState] = {}
        #: Columnar store of every (metric, VM) sample on this host.  An
        #: injected plane (e.g. a shared-memory one for the parallel
        #: control plane) must carry exactly ``PLANE_METRICS``.
        self.plane = plane if plane is not None else MetricPlane(PLANE_METRICS)
        #: Full sample history per VM (a stable PlaneSeries per metric),
        #: for the identifier and for experiment reporting.
        self.history: Dict[str, Dict[str, PlaneSeries]] = {}
        self.stats = MonitorStats()
        #: Reusable per-pass ingest batch (vm -> that VM's column buffer).
        self._columns: Dict[str, Dict[str, float]] = {}

    def sample(self, now: float) -> Dict[str, VmSample]:
        """Collect one interval's smoothed metrics for every domain.

        A failing domain costs only its own sample: faults are isolated
        per VM, and a failed listing costs one pass (no purging happens
        on a pass whose inventory is unknown).  All samples land in the
        metric plane as one batched column ingest.
        """
        out: Dict[str, VmSample] = {}
        try:
            domains = self.conn.listAllDomains()
        except LibvirtError:
            self.stats.list_failures += 1
            return out
        columns = self._columns
        columns.clear()
        present = set()
        for dom in domains:
            name = dom.name()
            present.add(name)
            try:
                raw = dom.blkioStats()
                perf = dom.perfStats()
                cpu = dom.cpuStats()
            except LibvirtError:
                self.stats.samples_dropped += 1
                continue
            st = self._state.get(name)
            if st is None:
                st = _VmMonitorState(self.config.ewma_alpha)
                self._state[name] = st
                self.history[name] = {
                    k: self.plane.series(name, k) for k in PLANE_METRICS
                }
            # Refill this VM's counter buffer in place and swap it with
            # the previous snapshot (double buffering: zero dict churn in
            # steady state).
            counters = st.cur
            reused = bool(counters)
            counters.clear()
            counters.update(raw)
            counters.update(perf)
            counters.update(cpu)
            prev = st.prev
            st.prev = counters
            st.cur = prev if prev is not None else {}
            if prev is None:
                continue  # first observation: no delta yet
            if reused:
                self.stats.sample_buffers_reused += 1

            dt = self.config.interval_s
            d = st.delta
            d.clear()
            for k, v in counters.items():
                d[k] = v - prev.get(k, 0.0)
            if min(d.values()) < -1e-6:
                # Cumulative counters ran backwards: the guest rebooted
                # (or the hypervisor reset its accounting).  Restart the
                # cursor from this observation; the next interval yields
                # a sane delta again.
                self.stats.counter_resets += 1
                continue

            iowait_ratio = safe_ratio(d["io_wait_time_ms"], d["io_serviced"], 0.0)
            cpi = safe_ratio(d["cycles"], d["instructions"], 0.0)
            io_bps = d["io_service_bytes"] / dt
            cpu_cores = d["cpu_time_core_seconds"] / dt
            active = d["instructions"] > 0
            llc_rate = d["llc_misses"] / dt if active else None

            sample = VmSample(
                time=now,
                iowait_ratio=st.iowait.update(iowait_ratio),
                cpi=st.cpi.update(cpi) if active else 0.0,
                io_bytes_ps=st.io_bytes.update(io_bps),
                llc_miss_rate=st.llc.update(llc_rate) if llc_rate is not None else None,
                cpu_usage_cores=st.cpu.update(cpu_cores),
            )
            out[name] = sample
            col = st.col
            col.clear()
            col["iowait_ratio"] = sample.iowait_ratio
            col["cpi"] = sample.cpi
            col["io_bytes_ps"] = sample.io_bytes_ps
            col["cpu_usage_cores"] = sample.cpu_usage_cores
            if sample.llc_miss_rate is not None:
                col["llc_miss_rate"] = sample.llc_miss_rate
            columns[name] = col
        if columns:
            self.plane.ingest(now, columns)
        # Forget VMs that left the host (migration / destroy): cursor,
        # EWMA state *and* sample history — a long-lived daemon must not
        # accumulate history for every VM that ever passed through.
        for gone in set(self._state) - present:
            del self._state[gone]
        for gone in set(self.history) - present:
            del self.history[gone]
            self.plane.remove_vm(gone)
            self.stats.histories_purged += 1
        retention = self.config.history_retention_s
        if retention is not None:
            self.stats.samples_pruned += self.plane.prune_before(now - retention)
        return out
