"""Command-line interface: reproduce any paper figure from the shell.

::

    python -m repro list                 # what can be reproduced
    python -m repro fig3                 # run one figure, print its series
    python -m repro fig9 --seed 11
    python -m repro fig11 --full-scale   # paper-size dimensions (slow)
    python -m repro sweep --workers 4    # β/γ closed-loop sensitivity grid
    python -m repro chaos                # Fig. 9 under fault injection
    python -m repro chaos --harness      # kill/freeze/corrupt the harness
    python -m repro bench --compare      # perf suite vs committed baseline
    python -m repro scenarios            # scored acceptance corpus
    python -m repro scenarios --quick    # the quick-tagged subset
    python -m repro obs export           # telemetry exposition of a run
    python -m repro obs export --report  # ...its incident report
    python -m repro demo                 # the quickstart scenario

Each figure command accepts ``--seed`` and prints the same tables the
benchmark harness prints; ``--json PATH`` additionally dumps the raw
result object for downstream plotting.  Commands built on repeated
independent simulations (``sweep``, ``fig1``, ``fig2``, ``fig9``,
``fig11``, ``fig12``) also take ``--workers N`` (process-parallel
fan-out; 0 = serial) and ``--cache-dir PATH`` (memoize per-run results
on disk; see docs/PARALLEL.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Dict

from repro.experiments import figures, sweeps
from repro.experiments.report import ProgressReporter, render_table


__all__ = ["main"]


def _parallel_kwargs(a: argparse.Namespace, label: str) -> dict:
    """Fan-out kwargs for parallel-capable commands (progress on stderr)."""
    return dict(workers=a.workers, cache_dir=a.cache_dir,
                progress=ProgressReporter(label))


#: name -> (runner factory, description, supports_full_scale, supports_parallel)
_FIGURES: Dict[str, tuple] = {
    "fig1": (lambda a: figures.fig1(seeds=(a.seed, a.seed + 4),
                                    **_parallel_kwargs(a, "fig1")),
             "I/O interference vs. fio cap (Fig. 1)", False, True),
    "fig2": (lambda a: figures.fig2(seeds=(a.seed, a.seed + 4),
                                    **_parallel_kwargs(a, "fig2")),
             "STREAM (memory) interference (Fig. 2)", False, True),
    "fig3": (lambda a: figures.fig3(seed=a.seed,
                                    shard_workers=a.shard_workers),
             "iowait-ratio deviation signal (Fig. 3)", False, False),
    "fig4": (lambda a: figures.fig4(seed=a.seed),
             "CPI deviation signal (Fig. 4)", False, False),
    "fig5": (lambda a: figures.fig5(seed=a.seed),
             "I/O antagonist identification (Fig. 5)", False, False),
    "fig6": (lambda a: figures.fig6(seed=a.seed),
             "CPU antagonist identification (Fig. 6)", False, False),
    "fig7": (lambda a: figures.fig7(),
             "CUBIC growth regions (Fig. 7)", False, False),
    "fig9": (lambda a: figures.fig9(seeds=(a.seed, a.seed + 4),
                                    shard_workers=a.shard_workers,
                                    **_parallel_kwargs(a, "fig9")),
             "dynamic control: default/static/PerfCloud (Fig. 9)", False, True),
    "fig10": (lambda a: figures.fig10(seed=a.seed),
              "cap timelines under PerfCloud (Fig. 10)", False, False),
    "fig11": (
        lambda a: figures.fig11(
            seed=a.seed,
            shard_workers=a.shard_workers,
            **(dict(num_hosts=15, num_workers=150, num_mr_jobs=100,
                    num_spark_jobs=100, num_antagonist_pairs=15,
                    horizon=40000.0) if a.full_scale else {}),
            **_parallel_kwargs(a, "fig11"),
        ),
        "large scale vs. LATE/Dolly (Fig. 11)", True, True),
    "fig12": (
        lambda a: figures.fig12(
            **(dict(repeats=30, num_hosts=15, num_workers=150,
                    num_antagonist_pairs=15) if a.full_scale
               else dict(repeats=8, num_hosts=4, num_workers=24, tasks=20,
                         num_antagonist_pairs=2)),
            **_parallel_kwargs(a, "fig12"),
        ),
        "variability across repeats (Fig. 12)", True, True),
}


#: Commands whose simulations deploy PerfCloud and therefore accept
#: ``--shard-workers`` (the in-simulation control-plane compute pool,
#: orthogonal to ``--workers``' whole-run fan-out).
_SHARDED_FIGURES = {"fig3", "fig9", "fig11"}


def _add_shard_workers_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--shard-workers", type=int, default=0, metavar="N",
                   help="compute processes per PerfCloud control plane "
                        "inside each simulation (0 = in-process; "
                        "byte-identical results either way)")


def _csv_floats(text: str) -> tuple:
    return tuple(float(x) for x in text.split(",") if x.strip())


def _csv_ints(text: str) -> tuple:
    return tuple(int(x) for x in text.split(",") if x.strip())


def _to_jsonable(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, float):
        return None if obj != obj else obj  # NaN -> null
    return obj


def _print_result(name: str, result: Any) -> None:
    """Generic, readable rendering of a figure result dataclass."""
    print(f"== {name} ==")
    if dataclasses.is_dataclass(result):
        for f in dataclasses.fields(result):
            value = getattr(result, f.name)
            if isinstance(value, dict) and value and not any(
                isinstance(v, (list, dict)) for v in value.values()
            ):
                rows = [[k, v] for k, v in value.items()]
                print(render_table([f.name, "value"], rows))
            elif isinstance(value, (int, float, str, bool)):
                print(f"{f.name}: {value}")
            else:
                preview = str(value)
                if len(preview) > 300:
                    preview = preview[:300] + " ..."
                print(f"{f.name}: {preview}")
    else:
        print(result)


def _run_demo(args: argparse.Namespace) -> int:
    from repro import (
        CloudManager, Cluster, FioRandomRead, HdfsCluster, JobTracker,
        PerfCloud, Priority, Simulator, teragen, terasort,
    )

    for deploy in (False, True):
        sim = Simulator(dt=1.0, seed=args.seed)
        cluster = Cluster(sim)
        cluster.add_host("server0")
        cloud = CloudManager(cluster)
        workers = cloud.boot_many("hdp", 6, priority=Priority.HIGH,
                                  app_id="hadoop")
        hdfs = HdfsCluster([w.name for w in workers], sim.rng.stream("hdfs"))
        jt = JobTracker(sim, workers, hdfs)
        vm = cloud.boot("noisy")
        vm.attach_workload(FioRandomRead())
        if deploy:
            PerfCloud(sim, cloud)
        job = jt.submit(terasort(), teragen(640), num_reducers=10)
        sim.run(2000)
        label = "with PerfCloud" if deploy else "default       "
        print(f"{label}: terasort JCT = {job.completion_time:.0f}s")
    return 0


def _run_harness_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.harness_chaos import (
        default_harness_plan, run_harness_chaos,
    )

    plan = default_harness_plan(seed=args.seed)
    result = run_harness_chaos(plan, workers=args.workers or 4)
    print(f"== harness chaos (seed {args.seed}) ==")
    print(f"tasks: {plan.n_tasks}  kills: {plan.kills}  "
          f"freezes: {plan.sigstops}  stalls: {plan.stalls}  "
          f"raises: {plan.raises_}  corrupted cache entries: {plan.corrupt}")
    stats = result.chaos_report.supervisor
    print(render_table(
        ["supervision counter", "value"],
        [[k, v] for k, v in stats.to_dict().items()],
    ))
    print(render_table(
        ["task", "status"],
        [[i, s] for i, s in sorted(result.statuses.items())],
    ))
    print(f"merged results byte-identical to clean serial run: "
          f"{result.identical}")
    print(f"cache-corruption recovery (recomputed exactly the corrupted "
          f"tasks): {result.recovered_from_corruption}")
    print(f"trace digest {result.digest}  elapsed {result.elapsed:.1f}s")
    verdict = "SURVIVED" if result.survived else "DIED"
    print(f"verdict: {verdict}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.summary(), fh, indent=2)
        print(f"\nraw result written to {args.json}")
    return 0 if result.survived else 1


def _run_chaos(args: argparse.Namespace) -> int:
    if args.harness:
        return _run_harness_chaos(args)
    from repro.experiments.chaos import (
        ChaosScenario, default_fault_plan, run_chaos,
    )

    plan = default_fault_plan(
        call_failure_p=args.call_failure_p,
        connection_failure_p=args.connection_failure_p,
        freeze_p=args.freeze_p,
        counter_reset_period_s=args.counter_reset_period or None,
        latency_p=args.latency_p,
        crash_vm=args.crash_vm or None,
        crash_at_s=args.crash_at,
        restart_after_s=args.restart_after,
    )
    scenario = ChaosScenario(
        seed=args.seed, size_mb=args.size_mb, horizon=args.horizon, plan=plan,
    )
    result = run_chaos(scenario)
    print(f"== chaos (seed {args.seed}) ==")
    print(f"plan: {plan.describe()}")
    jct = "-" if result.jct is None else f"{result.jct:.0f}s"
    print(f"job completed: {result.completed} (JCT {jct})  "
          f"agents alive: {result.agents_alive}")
    print(render_table(
        ["survival counter", "value"],
        [[k, v] for k, v in result.survival.items()],
    ))
    print(render_table(
        ["injected fault", "count"],
        [[k, v] for k, v in result.fault_counts.items()],
    ))
    print(f"fault trace: {result.trace_len} events, "
          f"digest {result.trace_digest[:16]}")
    verdict = "SURVIVED" if result.survived else "DIED"
    print(f"verdict: {verdict}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(_to_jsonable(result), fh, indent=2)
        print(f"\nraw result written to {args.json}")
    return 0 if result.survived else 1


def _run_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        filter_scenarios, load_corpus, run_corpus, scenario_hash,
    )
    from repro.scenarios.spec import ScenarioError

    try:
        specs = load_corpus(args.dir)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    selectors = list(args.filter)
    if args.quick:
        selectors.append("tag:quick")
    specs = filter_scenarios(specs, selectors)
    if not specs:
        print("no scenarios match the given filters", file=sys.stderr)
        return 2
    if args.list:
        rows = [[s.name, ",".join(s.tags), s.world.seed,
                 scenario_hash(s)[:12], len(s.expect)]
                for s in specs]
        print(render_table(["scenario", "tags", "seed", "hash", "checks"],
                           rows, title="scenario corpus"))
        return 0
    if args.resume and not args.cache_dir:
        print("error: --resume requires --cache-dir (finished tasks replay "
              "from the result cache)", file=sys.stderr)
        return 2
    result = run_corpus(specs, workers=args.workers, cache_dir=args.cache_dir,
                        progress=ProgressReporter("scenarios"),
                        supervise=args.supervised, resume=args.resume,
                        shard_workers=args.shard_workers)
    print(result.render())
    if args.resume:
        print(f"resume manifest {args.resume}: {result.resumed} tasks "
              f"already complete at start")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_jsonable(), fh, indent=2)
        print(f"\nscored matrix written to {args.json}")
    return 0 if result.all_passed else 1


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="process-parallel fan-out of independent runs "
                        "(0 = in-process serial; default)")
    p.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="memoize per-run results on disk; re-runs skip "
                        "already-computed points")


def _add_resilience_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--supervised", action="store_true",
                   help="run through the supervised pool (per-task "
                        "timeouts, retries, worker respawn — see "
                        "docs/ROBUSTNESS.md)")
    p.add_argument("--resume", metavar="MANIFEST", default=None,
                   help="record completed tasks in MANIFEST and, on "
                        "re-invocation after a crash, re-execute zero "
                        "finished tasks (requires --cache-dir)")


def _run_obs(args: argparse.Namespace) -> int:
    """Run a telemetry-on mitigation scenario and export what it saw."""
    from repro import teragen, terasort
    from repro.experiments.harness import TestbedConfig, build_testbed, run_until
    from repro.obs import Telemetry, render_text, snapshot

    telemetry = Telemetry(ledger=True, spans=True)
    bed = build_testbed(TestbedConfig(
        seed=args.seed, num_workers=6, framework="mapreduce",
        antagonists=(("fio", None),),
    ))
    pc = bed.deploy_perfcloud(shard_workers=args.shard_workers,
                              telemetry=telemetry)
    job = bed.jobtracker.submit(terasort(), teragen(args.size_mb),
                                num_reducers=10)
    run_until(bed.sim, lambda: job.completion_time is not None, horizon=4000)
    # Drain window: caps release and open incidents resolve after the job.
    bed.run(120.0)
    families = snapshot(pc, telemetry=telemetry)
    pc.close()

    if args.spans:
        telemetry.spans.export_jsonl(args.spans)
        print(f"{len(telemetry.spans)} spans written to {args.spans}",
              file=sys.stderr)
    if args.ledger:
        payload = json.dumps(telemetry.ledger.to_jsonable(), indent=2)
        if args.ledger == "-":
            print(payload)
        else:
            with open(args.ledger, "w") as fh:
                fh.write(payload + "\n")
            print(f"incident ledger written to {args.ledger}",
                  file=sys.stderr)
    if args.report:
        print(telemetry.ledger.render())
        return 0
    text = render_text(families)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"exposition written to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if args.analytic:
        points = sweeps.analytic_sweep(betas=args.betas, gammas=args.gammas)
    else:
        if args.resume and not args.cache_dir:
            print("error: --resume requires --cache-dir (finished points "
                  "replay from the result cache)", file=sys.stderr)
            return 2
        run_stats: dict = {}
        points = sweeps.closed_loop_sweep(
            betas=args.betas, gammas=args.gammas, seeds=args.seeds,
            size_mb=args.size_mb, workers=args.workers,
            cache_dir=args.cache_dir, progress=ProgressReporter("sweep"),
            supervise=args.supervised, resume=args.resume, stats=run_stats,
        )
    headers = ["beta", "gamma", "K", "depth", "victim JCT", "ant ops/s"]
    rows = [
        [p.beta, p.gamma, p.recovery_intervals, p.decrease_depth,
         "-" if p.victim_jct is None else p.victim_jct,
         "-" if p.antagonist_ops_per_s is None else p.antagonist_ops_per_s]
        for p in points
    ]
    print(render_table(headers, rows, title="β/γ sensitivity sweep"))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([_to_jsonable(p) for p in points], fh, indent=2)
        print(f"\nraw result written to {args.json}")
    salvaged = 0 if args.analytic else run_stats.get("salvaged", 0)
    if salvaged:
        print(f"error: {salvaged} sweep point(s) salvaged — every "
              "supervised attempt failed; affected grid cells show NaN",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PerfCloud reproduction — run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list reproducible figures")
    demo = sub.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument("--seed", type=int, default=7)
    sweep = sub.add_parser(
        "sweep",
        help="β/γ sensitivity sweep (closed-loop grid, or --analytic)",
    )
    sweep.add_argument("--betas", type=_csv_floats, default=(0.5, 0.65, 0.8),
                       metavar="B1,B2,...", help="β grid (comma-separated)")
    sweep.add_argument("--gammas", type=_csv_floats,
                       default=(0.001, 0.005, 0.02),
                       metavar="G1,G2,...", help="γ grid (comma-separated)")
    sweep.add_argument("--seeds", type=_csv_ints, default=(3, 7),
                       metavar="S1,S2,...", help="seeds per grid point")
    sweep.add_argument("--size-mb", type=float, default=960.0,
                       help="terasort input size per run")
    sweep.add_argument("--analytic", action="store_true",
                       help="analytic K/depth only — no simulation")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="dump the raw sweep points as JSON")
    _add_parallel_args(sweep)
    _add_resilience_args(sweep)
    chaos = sub.add_parser(
        "chaos",
        help="Fig. 9 mitigation scenario under fault injection "
             "(exit 0 = survived)",
    )
    chaos.add_argument("--harness", action="store_true",
                       help="attack the harness instead of the simulated "
                            "control plane: worker kills/freezes/stalls + "
                            "cache corruption under the supervised pool "
                            "(exit 0 = merged results byte-identical to a "
                            "clean serial run)")
    chaos.add_argument("--workers", type=int, default=4, metavar="N",
                       help="supervised pool size for --harness (default 4)")
    chaos.add_argument("--seed", type=int, default=3)
    chaos.add_argument("--size-mb", type=float, default=640.0,
                       help="terasort input size")
    chaos.add_argument("--horizon", type=float, default=8000.0,
                       help="give up if the job is not done by then")
    chaos.add_argument("--call-failure-p", type=float, default=0.1,
                       metavar="P", help="per-call LibvirtError probability")
    chaos.add_argument("--connection-failure-p", type=float, default=0.02,
                       metavar="P", help="listAllDomains failure probability")
    chaos.add_argument("--freeze-p", type=float, default=0.05, metavar="P",
                       help="per-sample stale-counter probability")
    chaos.add_argument("--counter-reset-period", type=float, default=120.0,
                       metavar="S", help="cumulative-counter reset period "
                                         "(0 disables)")
    chaos.add_argument("--latency-p", type=float, default=0.1, metavar="P",
                       help="slow-actuation probability")
    chaos.add_argument("--crash-vm", default="fio",
                       help="VM to crash mid-run ('' disables)")
    chaos.add_argument("--crash-at", type=float, default=60.0, metavar="S")
    chaos.add_argument("--restart-after", type=float, default=30.0,
                       metavar="S")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="dump the raw result as JSON")
    scenarios = sub.add_parser(
        "scenarios",
        help="run the scored acceptance corpus (exit 0 = all scenarios pass)",
    )
    scenarios.add_argument("--filter", action="append", default=[],
                           metavar="TOKEN",
                           help="keep scenarios whose name contains TOKEN, "
                                "or 'tag:<tag>' for an exact tag match "
                                "(repeatable; any match keeps)")
    scenarios.add_argument("--quick", action="store_true",
                           help="only the quick-tagged subset "
                                "(same as --filter tag:quick)")
    scenarios.add_argument("--list", action="store_true",
                           help="list matching scenarios without running")
    scenarios.add_argument("--dir", metavar="PATH", default=None,
                           help="corpus directory (default: <repo>/scenarios)")
    scenarios.add_argument("--json", metavar="PATH", default=None,
                           help="write the scored matrix as JSON")
    _add_parallel_args(scenarios)
    _add_resilience_args(scenarios)
    _add_shard_workers_arg(scenarios)
    obs = sub.add_parser(
        "obs",
        help="run a telemetry-on mitigation scenario and export its "
             "metrics exposition / incident ledger / control-interval "
             "spans (see docs/OBSERVABILITY.md)",
    )
    obs.add_argument("action", nargs="?", choices=("export",),
                     default="export",
                     help="what to do (only 'export' for now)")
    obs.add_argument("--seed", type=int, default=7)
    obs.add_argument("--size-mb", type=float, default=640.0,
                     help="terasort input size for the scenario run")
    obs.add_argument("--out", metavar="PATH", default=None,
                     help="write the Prometheus-style text exposition to "
                          "PATH instead of stdout")
    obs.add_argument("--ledger", metavar="PATH", nargs="?", const="-",
                     default=None,
                     help="also dump the incident ledger as JSON "
                          "(PATH, or stdout if no PATH given)")
    obs.add_argument("--spans", metavar="PATH", default=None,
                     help="also export control-interval spans as JSONL")
    obs.add_argument("--report", action="store_true",
                     help="print the human-readable incident report "
                          "instead of the exposition")
    _add_shard_workers_arg(obs)
    bench = sub.add_parser(
        "bench",
        help="hot-path benchmark suite + performance-regression gate "
             "(see docs/PERFORMANCE.md)",
    )
    bench.add_argument("--micro-only", action="store_true",
                       help="skip the macro (end-to-end scenario) layer")
    bench.add_argument("--quick", action="store_true",
                       help="fastest useful signal: micro suite only, "
                            "single repetition (equivalent to "
                            "--micro-only --repeat 1)")
    bench.add_argument("--repeat", type=int, default=3, metavar="N",
                       help="micro-benchmark repetitions (best-of; default 3)")
    bench.add_argument("--full-macro", action="store_true",
                       help="run fig11 at its figure-default dimensions (slow)")
    bench.add_argument("--profile", action="store_true",
                       help="additionally run the macro cases under cProfile "
                            "and write a top-N cumulative report next to the "
                            "result file")
    bench.add_argument("--profile-top", type=int, default=30, metavar="N",
                       help="rows per section in the --profile report "
                            "(default 30)")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="result file (default BENCH_<rev>.json)")
    bench.add_argument("--compare", metavar="BASELINE", nargs="?",
                       const="__default__", default=None,
                       help="compare against a baseline result "
                            "(default: the committed benchmarks/perf/baseline.json)")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero if any gated metric regressed "
                            "(implies --compare)")
    bench.add_argument("--strict", action="store_true",
                       help="also gate machine-dependent absolute metrics "
                            "(same-machine comparisons only)")
    bench.add_argument("--tolerance", type=float, default=0.30, metavar="T",
                       help="allowed relative regression (default 0.30)")
    for name, (_, desc, supports_full, supports_parallel) in _FIGURES.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--json", metavar="PATH", default=None,
                       help="dump the raw result as JSON")
        if supports_full:
            p.add_argument("--full-scale", action="store_true",
                           help="use the paper's exact dimensions (slow)")
        if supports_parallel:
            _add_parallel_args(p)
        if name in _SHARDED_FIGURES:
            _add_shard_workers_arg(p)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        rows = [[n, d] for n, (_, d, _, _) in _FIGURES.items()]
        print(render_table(["command", "reproduces"], rows))
        print("\nalso: `demo` — the quickstart scenario;"
              " `sweep` — the β/γ sensitivity grid;"
              " `chaos` — the mitigation scenario under fault injection;"
              " `bench` — the performance-regression suite;"
              " `scenarios` — the scored acceptance corpus;"
              " `obs` — telemetry exposition / incident ledger export")
        return 0
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "scenarios":
        return _run_scenarios(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "bench":
        from repro.bench.runner import main as bench_main

        args.compare_default = args.compare == "__default__"
        if args.compare_default:
            args.compare = None
        return bench_main(args)
    runner, _, _, _ = _FIGURES[args.command]
    result = runner(args)
    _print_result(args.command, result)
    if getattr(args, "json", None):
        with open(args.json, "w") as fh:
            json.dump(_to_jsonable(result), fh, indent=2)
        print(f"\nraw result written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
