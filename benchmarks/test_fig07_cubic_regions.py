"""Fig. 7 — the three regions of the Eq. 1 cubic cap-growth function.

Paper: after a multiplicative decrease, the cap grows steeply back toward
C_max (initial growth), flattens around it (plateau — a returning demand
surge finds the antagonist still contained), then accelerates to probe
for headroom (probing region).
"""

from conftest import banner

from repro.experiments import figures
from repro.experiments.report import render_table


def test_fig7_cubic_growth_regions(once):
    result = once(figures.fig7, intervals=12)

    banner("Fig. 7: Eq. 1 growth after a decrease (beta=0.8, gamma=0.005)")
    rows = [
        [t, f"{cap:.3f}", result.region(t)]
        for t, cap in zip(result.intervals, result.caps)
    ]
    print(render_table(["interval", "normalized cap", "region"], rows))
    print(f"\nK = {result.k:.2f} intervals (~{result.k * 5:.0f}s at the "
          "5s cadence)")

    caps = result.caps
    # Starts from the post-decrease level (1 - beta) * C_max.
    import pytest
    assert caps[0] == pytest.approx((1 - result.beta) * 1.0)
    # Monotone non-decreasing throughout.
    assert all(b >= a for a, b in zip(caps, caps[1:]))
    # Region structure: growth slope >> plateau slope << probing slope.
    k = result.k
    growth_slope = caps[1] - caps[0]
    plateau_slope = caps[int(k)] - caps[int(k) - 1]
    probe_slope = caps[-1] - caps[-2]
    assert growth_slope > 4 * plateau_slope
    assert probe_slope > 4 * plateau_slope
    # The plateau straddles C_max.
    assert abs(caps[int(round(k))] - 1.0) < 0.05
