"""CI smoke gate for the `repro bench` performance harness.

Not part of the tier-1 suite (``testpaths = ["tests"]``): run explicitly
via ``pytest benchmarks/perf/`` (the CI ``bench-smoke`` job) or through
``make bench``.  Two layers of protection:

* machine-independent floors — the vectorized identifier must beat the
  naive reference by the acceptance margin regardless of host speed;
* the committed baseline gate — ratio metrics from ``baseline.json``
  must not regress beyond the default 30% tolerance (absolute
  throughput/latency numbers are reported but not gated here, since CI
  runners vary wildly — pass ``--strict`` locally for those).
"""

import os

import pytest

from repro.bench.gate import DEFAULT_TOLERANCE, compare, metric_kind
from repro.bench.micro import run_micro
from repro.bench.runner import default_baseline_path, load_result


@pytest.fixture(scope="module")
def micro_metrics():
    return run_micro(repeat=1)


def test_identifier_speedup_floor(micro_metrics):
    # Headline acceptance criterion: the incremental (O(1)-per-pair)
    # identifier must beat the pre-optimization per-suspect realignment
    # by >= 20x at fig-scale dimensions in steady state.
    assert micro_metrics["micro.identifier.speedup_vs_naive"] >= 20.0


def test_dataplane_speedup_floors(micro_metrics):
    # Acceptance criteria for the columnar data plane: the vectorized
    # host step must beat the scalar dict-per-tick oracle by >= 1.5x at
    # fig-scale guest counts, with the idle fast path and the fabric
    # kernel holding the same floor.  The ratios are same-process and
    # machine-independent, but a CPU-steal burst can still depress one
    # measurement — re-measure before failing, like the obs gate.
    from repro.bench.micro import bench_dataplane

    floors = {
        "dataplane.speedup_vs_naive": 1.5,
        "dataplane.idle_speedup_vs_naive": 1.5,
        "dataplane.fabric_speedup_vs_naive": 1.5,
    }
    metrics = {k: micro_metrics[f"micro.{k}"] for k in floors}
    attempts = 1
    while (any(metrics[k] < floors[k] for k in floors) and attempts < 3):
        metrics = {k: v for k, v in bench_dataplane(repeat=2).items()
                   if k in floors}
        attempts += 1
    for k, floor in floors.items():
        assert metrics[k] >= floor, f"{k}: {metrics[k]:.2f} < {floor}"


def test_plane_speedup_floor(micro_metrics):
    # Columnar ingest (one batched column write + masked-column reads)
    # vs the per-(VM, metric) append store it replaced.
    assert micro_metrics["micro.plane.speedup_vs_naive"] >= 1.5


def test_timeseries_lookup_speedup_floor(micro_metrics):
    assert micro_metrics["micro.timeseries.speedup_vs_naive"] >= 3.0


def test_rolling_stats_speedup_floor(micro_metrics):
    assert micro_metrics["micro.rolling.speedup_vs_naive"] >= 3.0


def test_obs_overhead_under_three_percent(micro_metrics):
    # Acceptance criterion for the observability plane: with the incident
    # ledger and span recorder both on, a full fig9 closed-loop run may
    # cost at most 3% more wall-clock than the telemetry-off run (which
    # bench_obs separately asserts is byte-identical in its outputs).
    # Shared runners see multi-second noise bursts (CPU steal) that can
    # inflate every estimator of one measurement at once, so a reading
    # over the gate is re-measured before failing: a real regression
    # fails every attempt, a burst does not survive three.
    from repro.bench.micro import bench_obs

    ratio = micro_metrics["micro.obs.overhead_ratio"]
    attempts = [ratio]
    while ratio >= 1.03 and len(attempts) < 3:
        ratio = bench_obs()["obs.overhead_ratio"]
        attempts.append(ratio)
    assert ratio < 1.03, f"telemetry overhead over 3% in {attempts}"


def test_micro_metrics_are_positive_finite(micro_metrics):
    for name, value in micro_metrics.items():
        assert value > 0.0, name
        assert value == value and value != float("inf"), name


def test_no_gated_regression_vs_committed_baseline(micro_metrics):
    baseline_path = default_baseline_path()
    if baseline_path is None:
        pytest.skip("no committed baseline (benchmarks/perf/baseline.json)")
    baseline = load_result(baseline_path)
    gate = compare(
        micro_metrics,
        {k: v for k, v in baseline["metrics"].items()
         if k in micro_metrics},
        tolerance=DEFAULT_TOLERANCE,
        strict=False,  # ratio metrics only: CI hosts differ in raw speed
    )
    assert not gate.failures, "regressed: " + ", ".join(
        f"{c.metric} {c.baseline:.3g}->{c.current:.3g}" for c in gate.failures
    )


def test_baseline_when_present_contains_ratio_metrics():
    baseline_path = default_baseline_path()
    if baseline_path is None:
        pytest.skip("no committed baseline (benchmarks/perf/baseline.json)")
    baseline = load_result(baseline_path)
    ratios = [k for k in baseline["metrics"] if metric_kind(k) == "ratio"]
    assert ratios, "committed baseline carries no gateable ratio metrics"
    assert os.path.basename(baseline_path) == "baseline.json"
