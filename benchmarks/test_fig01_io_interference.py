"""Fig. 1 — performance degradation vs. I/O cap on a colocated fio VM.

Paper anchors: with fio uncapped, terasort degrades by ~72% and Spark
logistic regression by ~44% (Fig. 1c); tightening the cap recovers job
performance at fio's expense; below a ~20% cap, Spark sees little further
gain because disk stops being its bottleneck (§II-B).
"""

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import render_table


def test_fig1_io_interference_vs_cap(once):
    if full_scale():
        result = once(figures.fig1)
    else:
        result = once(
            figures.fig1,
            seeds=(3, 7),
            mr_benchmarks=("terasort", "wordcount"),
            spark_benchmarks=("logistic-regression", "svm"),
        )

    banner("Fig. 1: normalized JCT vs. I/O cap on fio (1.0 = running alone)")
    caps = ["alone" if c is None else f"{c:.0%}" for c in result.caps]
    rows = []
    for bench, series in result.mr_normalized_jct.items():
        rows.append([f"mr/{bench}", *(f"{v:.2f}" for v in series)])
    for bench, series in result.spark_normalized_jct.items():
        rows.append([f"spark/{bench}", *(f"{v:.2f}" for v in series)])
    rows.append(["fio IOPS (norm.)",
                 *(f"{v:.2f}" if v == v else "-" for v in result.fio_normalized_iops)])
    print(render_table(["benchmark \\ fio cap", *caps], rows))
    print(f"\npaper Fig. 1c: terasort +72%, logreg +44% | measured: "
          f"terasort +{result.terasort_uncapped_degradation:.0%}, "
          f"logreg +{result.logreg_uncapped_degradation:.0%}")

    # Shape assertions ----------------------------------------------------
    # Headline anchors within a factor-ish band.
    assert 0.40 <= result.terasort_uncapped_degradation <= 1.30
    assert 0.20 <= result.logreg_uncapped_degradation <= 0.80
    # Terasort is hit harder than Spark LR, as in the paper.
    assert (result.terasort_uncapped_degradation
            > result.logreg_uncapped_degradation)
    # Tightening the cap helps the victims...
    ts = result.mr_normalized_jct["terasort"]
    uncapped_idx = result.caps.index(1.0)
    tight_idx = result.caps.index(0.1)
    assert ts[tight_idx] < ts[uncapped_idx]
    # ...and hurts fio roughly proportionally.
    fio = dict(zip(result.caps, result.fio_normalized_iops))
    assert fio[0.1] < fio[0.5] < fio[1.0] * 1.01
    # Sub-20% caps buy Spark little extra (disk no longer the bottleneck).
    lr = result.spark_normalized_jct["logistic-regression"]
    gain_50_to_20 = lr[result.caps.index(0.5)] - lr[result.caps.index(0.2)]
    gain_20_to_10 = lr[result.caps.index(0.2)] - lr[tight_idx]
    assert gain_20_to_10 <= max(gain_50_to_20, 0.0) + 0.10
