"""Fig. 11 — large-scale comparison against LATE and Dolly.

Paper (152 nodes / 15 servers / 100 MR + 100 Spark jobs, 80% small):
PerfCloud bounds degradation best (34% of MR and 31% of Spark jobs under
10%, every job under 30%), Dolly improves with clone count but its
resource-utilization efficiency collapses, LATE trails both.

The default here is a scale model (50 nodes / 5 servers / 15+15 jobs);
pass ``REPRO_FULL_SCALE=1`` for the paper's dimensions (very slow).
"""

import numpy as np

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import render_table

SCHEMES = ("late", "dolly-2", "dolly-4", "dolly-6", "perfcloud")


def test_fig11_large_scale(once):
    if full_scale():
        result = once(
            figures.fig11,
            schemes=SCHEMES,
            num_hosts=15,
            num_workers=150,
            num_mr_jobs=100,
            num_spark_jobs=100,
            num_antagonist_pairs=6,
            horizon=40000.0,
        )
    else:
        result = once(figures.fig11, schemes=SCHEMES)

    banner("Fig. 11: per-job degradation breakdown and utilization efficiency")
    for kind, label in (("mapreduce", "11a MapReduce"), ("spark", "11b Spark")):
        rows = []
        for scheme in SCHEMES:
            b = result.breakdown(kind, scheme)
            degs = (result.mr_degradation if kind == "mapreduce"
                    else result.spark_degradation)[scheme]
            rows.append([scheme, f"{np.mean(degs):+.0%}" if degs else "-",
                         *(f"{v:.0%}" for v in b.values())])
        edges = list(result.breakdown(kind, SCHEMES[0]).keys())
        print(render_table([f"{label}", "mean deg", *edges], rows))
        print()
    rows = [[s, f"{result.efficiency[s]:.0%}"] for s in SCHEMES]
    print(render_table(["scheme", "utilization efficiency (Fig. 11c)"], rows))

    # Shape assertions ----------------------------------------------------
    def mean_deg(scheme):
        return np.mean(result.mr_degradation[scheme]
                       + result.spark_degradation[scheme])

    # PerfCloud achieves the best (or tied-best) mean degradation.
    pc = mean_deg("perfcloud")
    assert pc <= min(mean_deg(s) for s in SCHEMES) + 0.05
    if full_scale():
        # The paper's "Dolly improves with clones" needs the paper's slot
        # slack (150 workers); assert it only at full scale.
        assert mean_deg("dolly-6") <= mean_deg("dolly-2") + 0.25
    # Cloning always costs efficiency, and more clones cost more.
    assert result.efficiency["dolly-2"] < 1.0
    assert result.efficiency["dolly-6"] <= result.efficiency["dolly-2"]
    # PerfCloud burns no duplicate work at all.
    assert result.efficiency["perfcloud"] >= 0.99
    # LATE's speculation also costs efficiency.
    assert result.efficiency["late"] < 1.0
