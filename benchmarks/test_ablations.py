"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Control law** — CUBIC (Eq. 1) vs. the naive bang-bang capping the
   paper warns "may lead to oscillatory and unstable system behavior"
   (§III-C).  We measure throttle flapping and the cost borne by the
   antagonist for comparable victim protection.
2. **Missing-sample policy** — covered from the identification side in
   ``test_fig06_cpu_antagonist.py``; here we quantify it on synthetic
   series for the full sparsity range.
3. **EWMA smoothing** — raw 5-second samples vs. the paper's smoothing:
   smoothing suppresses false-positive detections on a healthy host.
"""

import numpy as np

from conftest import banner

from repro.core.adhoc import AdHocController
from repro.core.config import PerfCloudConfig
from repro.experiments.harness import TestbedConfig, build_testbed, run_until
from repro.experiments.report import render_table
from repro.metrics.correlation import MissingPolicy, aligned_pearson
from repro.metrics.timeseries import TimeSeries
from repro.workloads.datagen import teragen
from repro.workloads.puma import terasort


def _control_run(controller_factory, seed):
    testbed = build_testbed(
        TestbedConfig(seed=seed, num_workers=6, framework="mapreduce",
                      antagonists=(("fio", None),))
    )
    testbed.deploy_perfcloud(controller_factory=controller_factory)
    job = testbed.jobtracker.submit(terasort(), teragen(960), 15)
    assert run_until(testbed.sim, lambda: job.completion_time is not None, 8000)
    nm = testbed.node_manager()
    fio = testbed.antagonist_drivers["fio"]
    # Flapping: transitions between throttled and released actuations.
    actions = [c for (t, vm, res, c) in nm.actions if vm == "fio" and res == "io"]
    flips = sum(
        1 for a, b in zip(actions, actions[1:])
        if (a is None) != (b is None)
    )
    return job.completion_time, flips, fio.iops.total / testbed.sim.now


def test_ablation_control_law(once):
    def run_all(factory):
        return [_control_run(factory, s) for s in (3, 7, 11)]

    cubic_runs = once(run_all, None)  # default CUBIC
    adhoc_runs = run_all(lambda: AdHocController(PerfCloudConfig()))

    banner("Ablation: CUBIC (Eq. 1) vs. ad-hoc bang-bang capping")
    rows = []
    for name, runs in (("cubic", cubic_runs), ("ad-hoc", adhoc_runs)):
        jct = np.mean([r[0] for r in runs])
        flips = np.mean([r[1] for r in runs])
        fio_tput = np.mean([r[2] for r in runs])
        rows.append([name, f"{jct:.0f}s", f"{flips:.1f}", f"{fio_tput:.0f}"])
    print(render_table(
        ["controller", "victim JCT", "throttle flips", "fio ops/s"], rows))
    print("\npaper §III-C: ad-hoc capping oscillates; CUBIC is stable")

    cubic_flips = np.mean([r[1] for r in cubic_runs])
    adhoc_flips = np.mean([r[1] for r in adhoc_runs])
    # The bang-bang law flaps strictly more than CUBIC's damped probing.
    assert adhoc_flips > cubic_flips
    # Victim protection is comparable (CUBIC no more than ~25% worse).
    cubic_jct = np.mean([r[0] for r in cubic_runs])
    adhoc_jct = np.mean([r[0] for r in adhoc_runs])
    assert cubic_jct <= adhoc_jct * 1.25


def test_ablation_missing_policy(once):
    """Sparse suspects score spuriously under pairwise omission."""

    def score(sparsity, policy, seed=0):
        rng = np.random.default_rng(seed)
        victim = TimeSeries()
        suspect = TimeSeries()
        for i in range(40):
            t = 5.0 * (i + 1)
            level = 5.0 + 10.0 * (i % 8 < 4)  # alternating contention
            victim.append(t, level + rng.normal(0, 0.5))
            # The suspect is INNOCENT: its activity is rare and random.
            if rng.random() > sparsity:
                suspect.append(t, abs(rng.normal(5.0, 2.0)))
        return aligned_pearson(victim, suspect, window=40, policy=policy)

    def sweep():
        out = {}
        for sparsity in (0.0, 0.5, 0.8, 0.95):
            zero = np.mean([abs(score(sparsity, MissingPolicy.ZERO, s))
                            for s in range(20)])
            omit = np.mean([abs(score(sparsity, MissingPolicy.OMIT, s))
                            for s in range(20)])
            out[sparsity] = (zero, omit)
        return out

    result = once(sweep)
    banner("Ablation: |corr| of an INNOCENT suspect vs. sample sparsity")
    rows = [
        [f"{sp:.0%}", f"{z:.2f}", f"{o:.2f}"]
        for sp, (z, o) in result.items()
    ]
    print(render_table(["samples missing", "missing-as-zero", "omit"], rows))
    print("\npaper §III-B: zero-filling avoids over-emphasizing "
          "similarities computed over little data")

    # At high sparsity, omission inflates the innocent suspect's score
    # relative to zero-filling.
    z95, o95 = result[0.95]
    assert o95 > z95
    # Neither policy frames the innocent suspect when data is plentiful.
    z0, o0 = result[0.0]
    assert z0 < 0.5 and o0 < 0.5


def test_ablation_ewma_smoothing(once):
    """Raw samples trip the I/O threshold on a healthy host; EWMA doesn't."""

    def false_positives(alpha):
        testbed = build_testbed(
            TestbedConfig(seed=5, num_workers=6, framework="mapreduce")
        )
        testbed.deploy_perfcloud(
            PerfCloudConfig(ewma_alpha=alpha, h_io=1e9, h_cpi=1e9)
        )
        job = testbed.jobtracker.submit(terasort(), teragen(960), 15)
        assert run_until(testbed.sim,
                         lambda: job.completion_time is not None, 8000)
        sig = testbed.node_manager().detector.signal("app", "io")
        vals = sig.values()
        return float(np.max(vals)), float(np.mean(vals > 10.0))

    smoothed = once(false_positives, 0.7)
    raw = false_positives(1.0)

    banner("Ablation: EWMA smoothing of the 5-second samples (healthy host)")
    print(render_table(
        ["setting", "peak iowait std", "fraction above threshold"],
        [["ewma alpha=0.7", f"{smoothed[0]:.2f}", f"{smoothed[1]:.2f}"],
         ["raw (alpha=1.0)", f"{raw[0]:.2f}", f"{raw[1]:.2f}"]],
    ))

    # Smoothing can only damp the healthy-baseline peaks.
    assert smoothed[0] <= raw[0] + 1e-9
    # And the smoothed healthy signal must never cross the threshold.
    assert smoothed[1] == 0.0


def test_ablation_numa_isolation(once):
    """Future-work ablation (§IV-D2): NUMA-aware VM mapping.

    On a 2-socket host, pinning the protected application to socket 0 and
    the antagonists elsewhere removes LLC/bandwidth interference at the
    source — complementary to (and here compared against) throttling.
    """
    from dataclasses import replace

    from repro.hardware.numa import numa_isolate
    from repro.hardware.specs import R630
    from repro.virt.cluster import Cluster
    from repro.cloud.nova import CloudManager
    from repro.frameworks.hdfs import HdfsCluster
    from repro.frameworks.spark.driver import SparkScheduler
    from repro.sim.engine import Simulator
    from repro.virt.vm import Priority
    from repro.workloads.antagonists import StreamBenchmark
    from repro.workloads.datagen import sparkbench_synthetic
    from repro.workloads.sparkbench import logistic_regression

    def run(isolate, seed):
        spec = replace(R630, numa_sockets=2)
        sim = Simulator(dt=1.0, seed=seed)
        cluster = Cluster(sim, default_spec=spec)
        cluster.add_host("h0")
        cloud = CloudManager(cluster)
        workers = [
            cloud.boot(f"w{i}", host="h0", priority=Priority.HIGH, app_id="app")
            for i in range(6)
        ]
        hdfs = HdfsCluster([w.name for w in workers], sim.rng.stream("hdfs"))
        sched = SparkScheduler(sim, workers, hdfs)
        job = sched.submit(logistic_regression(), sparkbench_synthetic("lr", 640))
        vm = cloud.boot("stream", "m1.2xlarge", host="h0")
        vm.attach_workload(StreamBenchmark())
        if isolate:
            numa_isolate(cluster.hosts["h0"].memsys,
                         [w.name for w in workers], ["stream"])
        assert run_until(sim, lambda: job.completion_time is not None, 8000)
        return job.completion_time

    def sweep():
        seeds = (3, 7, 11)
        inter = np.mean([run(False, s) for s in seeds])
        iso = np.mean([run(True, s) for s in seeds])
        return inter, iso

    inter, iso = once(sweep)
    banner("Ablation: NUMA-aware VM mapping (2-socket host, Spark LR + STREAM)")
    print(render_table(
        ["placement", "mean JCT"],
        [["interleaved (round-robin)", f"{inter:.0f}s"],
         ["isolated (app on socket 0)", f"{iso:.0f}s"]],
    ))
    print("\npaper §IV-D2: NUMA-aware mapping is a complementary future-work "
          "optimization")
    # Isolation removes most of the memory interference.
    assert iso < inter * 0.75


def test_ablation_beta_gamma_sweep(once):
    """Sensitivity of Eq. 1's tuned constants (paper sets beta=0.8,
    gamma=0.005 empirically).

    Expectation: gamma controls the recovery horizon (K ~ gamma^(-1/3)) —
    smaller gamma protects the victim longer but starves the antagonist;
    the paper's operating point sits in the middle of the trade-off.
    """
    from repro.experiments.sweeps import analytic_sweep, closed_loop_sweep

    analytic = analytic_sweep()
    points = once(closed_loop_sweep)

    banner("Ablation: CUBIC (beta, gamma) sensitivity")
    rows = [
        [f"{p.beta}", f"{p.gamma}", f"{p.recovery_intervals:.1f}",
         f"{p.victim_jct:.0f}s", f"{p.antagonist_ops_per_s:.0f}"]
        for p in points
    ]
    print(render_table(
        ["beta", "gamma", "K (intervals)", "victim JCT", "fio ops/s"], rows))
    print("\npaper operating point: beta=0.8, gamma=0.005 (K ~ 5.4)")

    # Analytic: K decreases with gamma, for every beta.
    by_beta = {}
    for p in analytic:
        by_beta.setdefault(p.beta, []).append((p.gamma, p.recovery_intervals))
    for entries in by_beta.values():
        entries.sort()
        ks = [k for _, k in entries]
        assert ks == sorted(ks, reverse=True)

    # Closed loop: at fixed beta, slower probing (smaller gamma) never
    # hurts the victim and never helps the antagonist.
    for beta in {p.beta for p in points}:
        row = sorted((p.gamma, p) for p in points if p.beta == beta)
        slowest = row[0][1]     # smallest gamma
        fastest = row[-1][1]
        assert slowest.victim_jct <= fastest.victim_jct * 1.15
        assert slowest.antagonist_ops_per_s <= fastest.antagonist_ops_per_s * 1.15
