"""Fig. 12 — performance variability across repeated executions.

Paper: terasort (50 tasks) and Spark LR (50 tasks/stage) repeated 30
times with randomly placed antagonists; PerfCloud yields both the lowest
median normalized JCT and the tightest spread, because unlike LATE and
Dolly its effectiveness does not depend on where the antagonists landed.
"""

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import render_table

SCHEMES = ("late", "dolly-2", "perfcloud")


def test_fig12_variability(once):
    if full_scale():
        result = once(
            figures.fig12,
            repeats=30,
            schemes=("late", "dolly-4", "perfcloud"),
            num_hosts=15,
            num_workers=150,
            num_antagonist_pairs=15,
        )
    else:
        result = once(figures.fig12, repeats=8, schemes=SCHEMES,
                      num_hosts=4, num_workers=24, tasks=20,
                      num_antagonist_pairs=2)

    banner("Fig. 12: normalized JCT spread over repeated executions")
    for kind, data in (("terasort", result.terasort), ("spark LR", result.logreg)):
        rows = [
            [s, f"{d['median']:.2f}", f"{d['iqr']:.2f}",
             f"{d['min']:.2f}", f"{d['max']:.2f}", d["n"]]
            for s, d in data.items()
        ]
        print(render_table(
            [kind, "median", "IQR", "min", "max", "n"], rows))
        print()

    # Shape assertions ----------------------------------------------------
    # The robust paper claim at scale-model size is the *median*: PerfCloud
    # completes repeats consistently faster.  The spread (IQR) claim holds
    # in the paper's 15-server regime but is noisy at 4 servers with 8
    # repeats, so it is reported above and asserted only loosely.
    for data in (result.terasort, result.logreg):
        pc = data["perfcloud"]
        others = [data[s] for s in SCHEMES if s != "perfcloud"]
        assert pc["median"] <= min(o["median"] for o in others) + 0.05
        assert pc["min"] <= min(o["min"] for o in others) + 0.05
        assert pc["iqr"] <= max(o["iqr"] for o in others) + 0.40
