"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark runs one paper figure's experiment under pytest-benchmark
(single round — these are simulations, not microbenchmarks), prints the
reproduced series next to the paper's reported values, and asserts the
qualitative *shape*: who wins, roughly by how much, where thresholds and
crossovers fall.  EXPERIMENTS.md archives a full run.

Scale: figure runners default to laptop-scale dimensions.  Set
``REPRO_FULL_SCALE=1`` to run the paper's exact sizes (much slower).
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


def banner(title: str) -> None:
    print()
    print("=" * 74)
    print(title)
    print("=" * 74)
