"""Fig. 2 — degradation from a colocated memory-intensive STREAM VM.

Paper: both MapReduce and Spark suffer significantly, and Spark is hit
harder because it re-reads cached RDDs through the memory hierarchy
(§II-C, §III-A2).
"""

import numpy as np

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import render_table


def test_fig2_memory_interference(once):
    if full_scale():
        result = once(figures.fig2)
    else:
        result = once(
            figures.fig2,
            seeds=(3, 7),
            mr_benchmarks=("terasort", "wordcount"),
            spark_benchmarks=("logistic-regression", "svm"),
        )

    banner("Fig. 2: normalized JCT with a colocated STREAM VM")
    rows = [
        [f"mr/{b}", f"{v:.2f}"] for b, v in result.mr_normalized_jct.items()
    ] + [
        [f"spark/{b}", f"{v:.2f}"] for b, v in result.spark_normalized_jct.items()
    ]
    print(render_table(["benchmark", "JCT / JCT_alone"], rows))
    mr_mean = np.mean(list(result.mr_normalized_jct.values()))
    spark_mean = np.mean(list(result.spark_normalized_jct.values()))
    print(f"\npaper: both significant, Spark worse | measured means: "
          f"MR {mr_mean:.2f}x, Spark {spark_mean:.2f}x")

    # Shape assertions ----------------------------------------------------
    for v in result.mr_normalized_jct.values():
        assert v > 1.15  # "significant" degradation
    for v in result.spark_normalized_jct.values():
        assert v > 1.3
    assert result.spark_hit_harder
