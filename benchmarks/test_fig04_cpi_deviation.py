"""Fig. 4 — std of CPI as the shared-processor contention signal.

Paper: the peak CPI deviation across an application's VMs stays below 1
when running alone and rises well above 1 with a colocated STREAM VM;
the deviation magnitude tracks the degradation, and Spark feels it more
than MapReduce (§III-A2).
"""

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import render_table


def test_fig4_cpi_deviation(once):
    if full_scale():
        result = once(
            figures.fig4,
            mr_benchmarks=("terasort", "wordcount", "inverted-index"),
            spark_benchmarks=("logistic-regression", "svm", "page-rank"),
        )
    else:
        result = once(figures.fig4)

    banner("Fig. 4: std of CPI across the application's VMs (threshold 1)")
    rows = [
        [name, f"{r.alone_peak:.2f}", f"{r.coloc_peak:.2f}"]
        for name, r in result.per_benchmark.items()
    ]
    print(render_table(["benchmark", "peak alone", "peak +STREAM"], rows))
    print("\npaper: alone < 1 for all; colocated > 1 for all")

    # Shape assertions ----------------------------------------------------
    assert result.all_alone_below_one
    assert result.all_coloc_above_one
    # Healthy margin below the threshold when alone (no false positives).
    for r in result.per_benchmark.values():
        assert r.alone_peak < 0.7
