"""Fig. 9 — dynamic resource control on the small-scale testbed.

Paper: Spark logistic regression on a 12-node virtual cluster colocated
with fio + STREAM (+ sysbench decoys).  PerfCloud cuts the deviation
signals and improves JCT by ~31% over the default system; a static
20% cap improves ~33% but keeps bleeding the antagonists even when the
high-priority application no longer needs protection.
"""

import numpy as np

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import render_table


def test_fig9_dynamic_control(once):
    seeds = (3, 7, 11) if full_scale() else (3, 7)
    result = once(figures.fig9, seeds=seeds)

    banner("Fig. 9: default vs. static 20% caps vs. PerfCloud (Spark LR)")
    rows = []
    for scheme in ("default", "static", "perfcloud"):
        w = result.antagonist_work[scheme]
        rows.append([
            scheme,
            f"{result.jct[scheme]:.0f}s",
            f"{result.improvement[scheme] * 100:+.0f}%",
            f"{w['fio_ops'] * 100:.0f}%",
            f"{w['post_fio_ops'] * 100:.0f}%",
            f"{w['post_stream_bytes'] * 100:.0f}%",
        ])
    print(render_table(
        ["scheme", "JCT", "vs default",
         "fio tput (job)", "fio tput (after)", "stream tput (after)"],
        rows,
    ))
    print("\npaper Fig. 9c: PerfCloud +31%, static +33% (but static keeps "
          "throttling forever)")

    # Shape assertions ----------------------------------------------------
    assert result.improvement["perfcloud"] > 0.15
    assert result.improvement["static"] > 0.15
    # Static capping keeps hurting the antagonists after the job is gone;
    # PerfCloud releases them (post-job throughput back near default's).
    post_static = result.antagonist_work["static"]["post_fio_ops"]
    post_pc = result.antagonist_work["perfcloud"]["post_fio_ops"]
    assert post_static < 0.5
    assert post_pc > 0.8
    # The deviation signals were tamed: peak iowait std under PerfCloud is
    # well below the default run's peak.
    peak_default = max(v for _, v in result.io_signal["default"])
    peak_pc = max(v for _, v in result.io_signal["perfcloud"])
    assert peak_pc <= peak_default
    # Detection happened at all in the default run.
    assert peak_default > 10.0


def test_fig10_cap_timeline(once):
    result = once(figures.fig10, seed=7)

    banner("Fig. 10: normalized caps applied to fio and STREAM over time")
    for (vm, resource), series in sorted(result.cap_series.items()):
        pts = [(t, v) for t, v in series if v == v][:14]
        line = " ".join(f"{t:.0f}s:{v:.2f}" for t, v in pts)
        print(f"  {vm:8s} {resource:3s}  {line}")
    print(f"\nthrottle episodes (multiplicative decreases to the floor): "
          f"{result.throttle_episodes}")
    print("paper Fig. 10: throttle ~15-40s (growth+plateau), probing after "
          "40s, fio re-throttled ~65s")

    # Shape assertions ----------------------------------------------------
    assert result.throttle_episodes >= 1
    # fio's I/O cap shows the full CUBIC shape: a value near the decrease
    # floor and later values above 1.0 (probing) before release.
    fio_io = result.cap_series.get(("fio", "io"))
    assert fio_io is not None
    vals = [v for _, v in fio_io if v == v]
    assert min(vals) <= 0.25
    assert max(vals) > 1.0
