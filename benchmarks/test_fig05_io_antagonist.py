"""Fig. 5 — identifying the I/O antagonist by online cross-correlation.

Paper: among {fio random read, sysbench oltp, sysbench cpu} colocated
with a terasort, only fio's I/O-throughput series correlates strongly
(>0.8) with the victim's iowait-ratio deviation, and a dataset of as few
as 3 samples already identifies it (§III-B, Fig. 5c).
"""

from conftest import banner

from repro.experiments import figures
from repro.experiments.report import render_table


def test_fig5_io_antagonist_identification(once):
    result = once(figures.fig5)

    banner("Fig. 5: corr(victim iowait-ratio std, suspect I/O throughput)")
    windows = sorted(next(iter(result.correlations_by_window.values())))
    rows = []
    for suspect in sorted(result.correlations):
        by_w = result.correlations_by_window[suspect]
        rows.append([
            suspect,
            *(f"{by_w[w]:+.2f}" for w in windows),
            "yes" if suspect in result.identified else "no",
        ])
    print(render_table(
        ["suspect", *(f"n={w}" for w in windows), "antagonist?"], rows))
    print("\npaper: fio > 0.8 from n=3 onward; decoys stay low")

    # Shape assertions ----------------------------------------------------
    fio = next(s for s in result.correlations if s.startswith("fio"))
    assert result.correlations[fio] >= 0.8
    assert result.identified == [fio]
    # Identifiable from a dataset of 3 (the paper's headline).
    assert result.correlations_by_window[fio][3] >= 0.8
    # Decoys below threshold at the operating window.
    for suspect, corr in result.correlations.items():
        if suspect != fio:
            assert corr < 0.8
