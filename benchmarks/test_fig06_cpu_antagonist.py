"""Fig. 6 — identifying a *group* of processor antagonists.

Paper: two small STREAM VMs that individually exert little pressure but
together cause significant interference both correlate above 0.8 with
the victim's CPI deviation via their LLC miss rates; missing samples are
treated as zero rather than omitted, which is what keeps sparse suspects
from scoring spuriously (§III-B).
"""

from conftest import banner

from repro.experiments import figures
from repro.experiments.report import render_table
from repro.metrics.correlation import MissingPolicy


def test_fig6_cpu_antagonist_identification(once):
    result = once(figures.fig6)

    banner("Fig. 6: corr(victim CPI std, suspect LLC miss rate)")
    rows = [
        [s, f"{c:+.2f}", "yes" if s in result.identified else "no"]
        for s, c in sorted(result.correlations.items())
    ]
    print(render_table(["suspect", "corr", "antagonist?"], rows))
    print("\npaper: both STREAM VMs > 0.8; oltp and sysbench cpu are not")

    streams = sorted(s for s in result.correlations if s.startswith("stream"))
    assert len(streams) == 2
    for s in streams:
        assert result.correlations[s] >= 0.8
    assert sorted(result.identified) == streams
    for s, c in result.correlations.items():
        if s not in streams:
            assert c < 0.8


def test_fig6_missing_as_zero_matters(once):
    """The §III-B design point: omit-missing flips the verdict."""
    zero = figures.fig6(missing_policy=MissingPolicy.ZERO)
    omit = once(figures.fig6, missing_policy=MissingPolicy.OMIT)

    banner("Fig. 6 ablation: missing-as-zero vs. omit-missing")
    rows = [
        [s, f"{zero.correlations[s]:+.2f}", f"{omit.correlations[s]:+.2f}"]
        for s in sorted(zero.correlations)
    ]
    print(render_table(["suspect", "zero", "omit"], rows))

    streams = [s for s in zero.correlations if s.startswith("stream")]
    for s in streams:
        assert zero.correlations[s] >= 0.8
        # Omitting the idle-gap samples loses (or inverts) the evidence.
        assert omit.correlations[s] < 0.8
