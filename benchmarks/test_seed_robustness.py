"""Calibration-robustness bench: headline anchors across many seeds.

Guards against the reproduction's anchors being a lucky seed: the Fig. 1c
degradations and the closed-loop PerfCloud improvement must hold on
average across a seed sweep, with bounded run-to-run dispersion.
"""

import numpy as np

from conftest import banner

from repro.experiments.figures import _run_job
from repro.experiments.harness import TestbedConfig, build_testbed, run_until
from repro.experiments.report import render_table
from repro.workloads.datagen import teragen
from repro.workloads.puma import terasort

SEEDS = (3, 5, 7, 11, 13, 17)


def test_anchor_robustness_across_seeds(once):
    def sweep():
        rows = {}
        for bench, kind in (("terasort", "mapreduce"),
                            ("logistic-regression", "spark")):
            alone = [
                _run_job(kind, bench, seed=s, size_mb=640)[1].completion_time
                for s in SEEDS
            ]
            coloc = [
                _run_job(kind, bench, seed=s, size_mb=640,
                         antagonists=(("fio", None),))[1].completion_time
                for s in SEEDS
            ]
            degs = [c / a - 1 for a, c in zip(alone, coloc)]
            rows[bench] = (float(np.mean(degs)), float(np.std(degs)))
        return rows

    rows = once(sweep)
    banner(f"Anchor robustness over {len(SEEDS)} seeds (fio colocation)")
    print(render_table(
        ["benchmark", "mean degradation", "std across seeds"],
        [[b, f"{m:+.0%}", f"{s:.2f}"] for b, (m, s) in rows.items()],
    ))
    print("\npaper anchors: terasort +72%, Spark LR +44%")

    ts_mean, ts_std = rows["terasort"]
    lr_mean, lr_std = rows["logistic-regression"]
    assert 0.45 <= ts_mean <= 1.1
    assert 0.2 <= lr_mean <= 0.75
    assert ts_mean > lr_mean
    # Dispersion bounded: the anchor is a property, not a seed.
    assert ts_std < 0.4 and lr_std < 0.4


def test_perfcloud_improvement_across_seeds(once):
    def improvement(seed: int) -> float:
        def jct(deploy: bool) -> float:
            testbed = build_testbed(
                TestbedConfig(seed=seed, num_workers=6,
                              framework="mapreduce",
                              antagonists=(("fio", None), ("stream", None)))
            )
            if deploy:
                testbed.deploy_perfcloud()
            job = testbed.jobtracker.submit(terasort(), teragen(640), 10)
            assert run_until(
                testbed.sim, lambda: job.completion_time is not None, 8000
            )
            return job.completion_time

        return 1.0 - jct(True) / jct(False)

    def sweep():
        return [improvement(s) for s in SEEDS]

    imps = once(sweep)
    banner(f"PerfCloud JCT improvement over {len(SEEDS)} seeds (fio+STREAM)")
    print(render_table(
        ["seed", "improvement"],
        [[s, f"{i:+.0%}"] for s, i in zip(SEEDS, imps)],
    ))
    mean = float(np.mean(imps))
    print(f"\nmean improvement: {mean:+.0%} (paper Fig. 9c: +31%)")
    assert mean > 0.15
    # PerfCloud never makes things substantially worse on any seed.
    assert min(imps) > -0.10
