"""Fig. 3 — std of the block-iowait ratio as an early I/O-contention signal.

Paper: running alone, the deviation across the Hadoop VMs stays below the
threshold of 10; with a colocated fio random-read VM the peak deviation
grows by a factor of ~8.2, and the signal reacts within seconds (§III-A1).
"""

from conftest import banner, full_scale

from repro.experiments import figures
from repro.experiments.report import format_series, render_table


def test_fig3_iowait_ratio_deviation(once):
    benchmarks = (
        ("terasort", "wordcount", "inverted-index")
        if full_scale()
        else ("terasort", "wordcount")
    )
    result = once(figures.fig3, benchmarks=benchmarks)

    banner("Fig. 3: std of blkio iowait ratio across Hadoop VMs (threshold 10)")
    t = result.terasort
    rows = [["terasort", f"{t.alone_peak:.2f}", f"{t.coloc_peak:.2f}",
             f"{t.peak_ratio:.1f}x"]]
    for name, r in result.others.items():
        rows.append([name, f"{r.alone_peak:.2f}", f"{r.coloc_peak:.2f}",
                     f"{r.peak_ratio:.1f}x"])
    print(render_table(["benchmark", "peak alone", "peak +fio", "ratio"], rows))
    print("\nterasort +fio deviation timeline (first 60s):")
    print(" ", format_series([p for p in t.coloc_series if p[0] <= 60], precision=1))
    print("\npaper: alone < 10, colocated peak ~8.2x higher")

    # Shape assertions ----------------------------------------------------
    assert t.alone_below_threshold
    assert t.coloc_exceeds_threshold
    assert t.peak_ratio > 5.0
    for r in result.others.values():
        assert r.alone_below_threshold
        assert r.coloc_exceeds_threshold
    # Early detection: the signal crosses the threshold within ~3 intervals
    # of the contended job starting (vs. waiting out a whole task under
    # speculative execution).
    crossing = next(
        (time for time, v in t.coloc_series if v > t.threshold), None
    )
    assert crossing is not None and crossing <= 20.0
